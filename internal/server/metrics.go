package server

import (
	"expvar"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"dcg/internal/core"
	"dcg/internal/obs"
	"dcg/internal/simrun"
	"dcg/internal/usagetrace"
)

// instruments is the server's typed metric set, registered in an
// obs.Registry and served on /metrics in Prometheus text format. The
// legacy JSON snapshot (/stats, /metricz, expvar "dcgserve") is derived
// from the same instruments, so the two views can never disagree.
type instruments struct {
	reg *obs.Registry

	// HTTP layer.
	requests *obs.CounterVec   // dcgserve_requests_total{route}
	reqDur   *obs.HistogramVec // dcgserve_request_duration_seconds{route}
	errors   *obs.Counter      // dcgserve_request_errors_total

	// Simulation requests through the two-level executor. Exactly one
	// served-source counter increments per sim request, so
	// cache + coalesced + replayed + simulated == sim_requests.
	simRequests *obs.Counter    // dcgserve_sim_requests_total
	served      *obs.CounterVec // dcgserve_sim_served_total{source}

	// Simulation execution.
	simsRun    *obs.Counter      // dcgserve_sims_run_total (full runs + captures)
	timingRuns *obs.Counter      // dcgserve_timing_captures_total
	activeSims *obs.Gauge        // dcgserve_sims_inflight
	simDur     *obs.HistogramVec // dcgserve_sim_duration_seconds{mode}

	// Worker pool.
	queueDepth *obs.Gauge     // dcgserve_worker_queue_depth
	queueWait  *obs.Histogram // dcgserve_worker_wait_seconds
}

// servedSources are the sim_served_total label values, pre-created so a
// fresh server scrapes zeros instead of missing series.
var servedSources = []string{"simulated", "cache", "coalesced", "replayed", "store"}

// instrumentedRoutes are the request-counter label values pre-created at
// startup (the middleware accepts any route, these just guarantee the
// series exist from the first scrape).
var instrumentedRoutes = []string{"/v1/sim", "/v1/batch", "/v1/trace", "/v1/benchmarks", "/v1/schemes"}

// newInstruments builds the metric set. The cache-level counters are
// registered as scrape-time callbacks over the executor's own counters,
// so the Prometheus view exposes the cache's cumulative hit/miss/
// eviction series without a second set of books.
func (s *Server) newInstruments() *instruments {
	reg := obs.NewRegistry()
	m := &instruments{
		reg: reg,
		requests: reg.CounterVec("dcgserve_requests_total",
			"HTTP requests served, by route.", "route"),
		reqDur: reg.HistogramVec("dcgserve_request_duration_seconds",
			"HTTP request latency in seconds, by route.", nil, "route"),
		errors: reg.Counter("dcgserve_request_errors_total",
			"HTTP error responses written."),
		simRequests: reg.Counter("dcgserve_sim_requests_total",
			"Simulation requests submitted to the executor (one per /v1/sim call and per /v1/batch item)."),
		served: reg.CounterVec("dcgserve_sim_served_total",
			"Simulation requests served, by source: simulated (full run), cache (result memo), coalesced (shared an in-flight run), replayed (cached timing trace), store (persistent artifact store).", "source"),
		simsRun: reg.Counter("dcgserve_sims_run_total",
			"Cycle-accurate simulations executed (full runs and timing captures)."),
		timingRuns: reg.Counter("dcgserve_timing_captures_total",
			"Timing simulations that also captured a usage trace."),
		activeSims: reg.Gauge("dcgserve_sims_inflight",
			"Simulations executing right now."),
		simDur: reg.HistogramVec("dcgserve_sim_duration_seconds",
			"Simulation execution time in seconds, by mode: full, capture, replay.", nil, "mode"),
		queueDepth: reg.Gauge("dcgserve_worker_queue_depth",
			"Simulations waiting for a worker slot."),
		queueWait: reg.Histogram("dcgserve_worker_wait_seconds",
			"Time simulations spent queued for a worker slot.", nil),
	}
	for _, src := range servedSources {
		m.served.With(src)
	}
	for _, r := range instrumentedRoutes {
		m.requests.With(r)
		m.reqDur.With(r)
	}

	reg.GaugeFunc("dcgserve_workers",
		"Size of the simulation worker pool.",
		func() float64 { return float64(s.cfg.Workers) })
	reg.GaugeFunc("dcgserve_uptime_seconds",
		"Seconds since the server started.",
		func() float64 { return time.Since(s.startedAt).Seconds() })
	reg.GaugeFunc("dcgserve_draining",
		"1 while the server is draining (post-Drain), else 0.",
		func() float64 {
			if s.Draining() {
				return 1
			}
			return 0
		})

	cacheFuncs := func(prefix, help string, stats func() simrun.Stats) {
		reg.CounterFunc(prefix+"_hits_total", "Hits in the "+help+".",
			func() float64 { return float64(stats().Hits) })
		reg.CounterFunc(prefix+"_misses_total", "Misses in the "+help+".",
			func() float64 { return float64(stats().Misses) })
		reg.CounterFunc(prefix+"_coalesced_total", "Requests that joined an in-flight run in the "+help+".",
			func() float64 { return float64(stats().Coalesced) })
		reg.CounterFunc(prefix+"_evictions_total", "LRU evictions from the "+help+".",
			func() float64 { return float64(stats().Evictions) })
		reg.GaugeFunc(prefix+"_resident", "Entries resident in the "+help+".",
			func() float64 { return float64(stats().Resident) })
	}
	cacheFuncs("dcgserve_result_cache", "memoised-result cache",
		func() simrun.Stats { return s.exec.ResultStats() })
	cacheFuncs("dcgserve_timing_cache", "timing-trace cache",
		func() simrun.Stats { return s.exec.TimingStats() })

	// Fused-replay counters (process-wide, maintained by the trace layer):
	// how often an encoded usage trace was decoded into its columnar form,
	// how often an existing decode was reused, and how many scheme lanes
	// rode fused replay passes. decodes ≪ fused_schemes is the signature of
	// the decode-once/evaluate-many path working.
	reg.CounterFunc("dcg_trace_decodes_total",
		"Columnar decodes of captured usage traces.",
		func() float64 { return float64(usagetrace.Decodes()) })
	reg.CounterFunc("dcg_trace_decode_reuses_total",
		"Replays that reused an already-decoded trace instead of decoding again.",
		func() float64 { return float64(usagetrace.DecodeReuses()) })
	reg.CounterFunc("dcg_replay_fused_schemes_total",
		"Scheme lanes evaluated by fused multi-scheme replay passes.",
		func() float64 { return float64(usagetrace.FusedSchemes()) })

	// Packed-replay counters (process-wide, maintained by the core layer):
	// how many scheme lanes the bit-packed columnar kernel served versus
	// how many fell back to the scalar fused engine. packed ≫ fallbacks is
	// the expected steady state; a rising fallback rate means evaluations
	// are arriving with telemetry sinks or machine-mismatched schemes.
	reg.CounterFunc("dcg_replay_packed_schemes_total",
		"Scheme lanes evaluated by the bit-packed columnar replay kernel.",
		func() float64 { return float64(core.PackedReplaySchemes()) })
	reg.CounterFunc("dcg_replay_packed_fallbacks_total",
		"Scheme lanes that fell back from the packed kernel to scalar replay.",
		func() float64 { return float64(core.PackedReplayFallbacks()) })

	// Parallel-replay instrumentation: shard throughput plus the resolved
	// worker configuration (replay shards per scheme; also the decode
	// parallelism — one knob governs both).
	reg.CounterFunc("dcg_replay_shards_total",
		"Word-range shard tasks executed by the parallel packed replay engine.",
		func() float64 { return float64(core.ReplayShardsExecuted()) })
	reg.GaugeFunc("dcg_replay_parallel_workers",
		"Configured replay worker count (replay shards per scheme).",
		func() float64 { return float64(core.ReplayParallelism()) })

	reg.GaugeFunc("go_goroutines", "Number of goroutines.",
		func() float64 { return float64(runtime.NumGoroutine()) })

	// Runtime memory/GC gauges. ReadMemStats stops the world, so one
	// throttled sampler feeds all four series instead of each gauge (or
	// each scrape) paying that pause separately.
	ms := &memStatsSampler{}
	reg.GaugeFunc("go_memstats_heap_alloc_bytes",
		"Bytes of allocated heap objects.",
		func() float64 { return float64(ms.get().HeapAlloc) })
	reg.CounterFunc("go_gc_pause_seconds_total",
		"Cumulative stop-the-world GC pause time.",
		func() float64 { return float64(ms.get().PauseTotalNs) / 1e9 })
	reg.CounterFunc("go_gc_cycles_total",
		"Completed garbage-collection cycles.",
		func() float64 { return float64(ms.get().NumGC) })
	reg.GaugeFunc("go_sched_gomaxprocs_threads",
		"Current GOMAXPROCS setting.",
		func() float64 { return float64(runtime.GOMAXPROCS(0)) })

	version, revision := obs.BuildInfo()
	buildInfo := reg.GaugeVec("dcg_build_info",
		"Build identity of the running binary; the value is always 1.",
		"version", "revision")
	buildInfo.With(version, revision).Set(1)
	return m
}

// memStatsSampler caches one runtime.MemStats snapshot for up to a
// second. Scrapes within the window (and the several gauges reading from
// one scrape) share a single ReadMemStats stop-the-world.
type memStatsSampler struct {
	mu   sync.Mutex
	last time.Time
	ms   runtime.MemStats
}

func (s *memStatsSampler) get() runtime.MemStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.last.IsZero() || time.Since(s.last) >= time.Second {
		runtime.ReadMemStats(&s.ms)
		s.last = time.Now()
	}
	return s.ms
}

// Snapshot is a point-in-time copy of the service counters, served on
// /stats and /metricz and published under the expvar key "dcgserve".
// The counters are the same instruments /metrics exports; CacheMisses
// is derived as simulated + replayed + store (every request that missed
// the in-memory result memo), so hits + misses + coalesced ==
// sim_requests always holds — a replay or store load is never
// double-counted.
type Snapshot struct {
	UptimeSec   float64 `json:"uptime_sec"`
	Draining    bool    `json:"draining"`
	Workers     int     `json:"workers"`
	Requests    int64   `json:"requests"`
	Batches     int64   `json:"batches"`
	Errors      int64   `json:"errors"`
	SimsRun     int64   `json:"sims_run"`
	ActiveSims  int64   `json:"active_sims"`
	SimRequests int64   `json:"sim_requests"`
	CacheHits   int64   `json:"cache_hits"`
	CacheMisses int64   `json:"cache_misses"`
	Coalesced   int64   `json:"coalesced"`
	StoreHits   int64   `json:"store_hits"`
	CacheSize   int     `json:"cache_size"`
	Evictions   uint64  `json:"cache_evictions"`

	// Capture-once / replay-many counters: TimingRuns counts core timing
	// simulations that also captured a trace, Replays counts requests
	// answered by replaying one, TimingCached is the resident trace count.
	TimingRuns   int64 `json:"timing_runs"`
	Replays      int64 `json:"replays"`
	TimingCached int   `json:"timing_cache_size"`
}

// Snapshot collects the current counter values.
func (s *Server) Snapshot() Snapshot {
	cs := s.exec.ResultStats()
	ts := s.exec.TimingStats()
	m := s.m
	simulated := int64(m.served.With("simulated").Value())
	replayed := int64(m.served.With("replayed").Value())
	storeHits := int64(m.served.With("store").Value())
	return Snapshot{
		UptimeSec:    time.Since(s.startedAt).Seconds(),
		Draining:     s.Draining(),
		Workers:      s.cfg.Workers,
		Requests:     int64(m.requests.With("/v1/sim").Value() + m.requests.With("/v1/batch").Value() + m.requests.With("/v1/trace").Value()),
		Batches:      int64(m.requests.With("/v1/batch").Value()),
		Errors:       int64(m.errors.Value()),
		SimsRun:      int64(m.simsRun.Value()),
		ActiveSims:   m.activeSims.Value(),
		SimRequests:  int64(m.simRequests.Value()),
		CacheHits:    int64(m.served.With("cache").Value()),
		CacheMisses:  simulated + replayed + storeHits,
		Coalesced:    int64(m.served.With("coalesced").Value()),
		StoreHits:    storeHits,
		CacheSize:    cs.Resident,
		Evictions:    cs.Evictions,
		TimingRuns:   int64(m.timingRuns.Value()),
		Replays:      replayed,
		TimingCached: ts.Resident,
	}
}

// expvar.Publish panics on duplicate registration, and tests construct
// many Servers per process, so the "dcgserve" var is registered once and
// always reads through a pointer to the most recently built server.
var (
	expvarOnce   sync.Once
	expvarServer atomic.Pointer[Server]
)

func (s *Server) publishExpvar() {
	expvarServer.Store(s)
	expvarOnce.Do(func() {
		expvar.Publish("dcgserve", expvar.Func(func() any {
			if srv := expvarServer.Load(); srv != nil {
				return srv.Snapshot()
			}
			return nil
		}))
	})
}
