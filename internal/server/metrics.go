package server

import (
	"expvar"
	"sync"
	"sync/atomic"
	"time"
)

// metrics is the server's own counter set. Everything is atomic so the
// handlers never serialise on a stats lock.
type metrics struct {
	requests    atomic.Int64 // HTTP requests to /v1/sim and /v1/batch
	batches     atomic.Int64 // /v1/batch requests
	errors      atomic.Int64 // error responses written
	simsRun     atomic.Int64 // simulations actually executed
	activeSims  atomic.Int64 // simulations executing right now
	cacheHits   atomic.Int64 // requests answered from the memo
	cacheMisses atomic.Int64 // requests that ran (or tried to run) a sim
	coalesced   atomic.Int64 // requests that shared an in-flight run
	timingRuns  atomic.Int64 // core timing simulations captured to a trace
	replays     atomic.Int64 // requests answered by replaying a cached trace
}

// Snapshot is a point-in-time copy of the service counters, served on
// /metricz and published under the expvar key "dcgserve".
type Snapshot struct {
	UptimeSec   float64 `json:"uptime_sec"`
	Draining    bool    `json:"draining"`
	Workers     int     `json:"workers"`
	Requests    int64   `json:"requests"`
	Batches     int64   `json:"batches"`
	Errors      int64   `json:"errors"`
	SimsRun     int64   `json:"sims_run"`
	ActiveSims  int64   `json:"active_sims"`
	CacheHits   int64   `json:"cache_hits"`
	CacheMisses int64   `json:"cache_misses"`
	Coalesced   int64   `json:"coalesced"`
	CacheSize   int     `json:"cache_size"`
	Evictions   uint64  `json:"cache_evictions"`

	// Capture-once / replay-many counters: TimingRuns counts core timing
	// simulations that also captured a trace, Replays counts requests
	// answered by replaying one, TimingCached is the resident trace count.
	TimingRuns   int64 `json:"timing_runs"`
	Replays      int64 `json:"replays"`
	TimingCached int   `json:"timing_cache_size"`
}

// Snapshot collects the current counter values.
func (s *Server) Snapshot() Snapshot {
	cs := s.exec.ResultStats()
	ts := s.exec.TimingStats()
	return Snapshot{
		UptimeSec:    time.Since(s.startedAt).Seconds(),
		Draining:     s.Draining(),
		Workers:      s.cfg.Workers,
		Requests:     s.metrics.requests.Load(),
		Batches:      s.metrics.batches.Load(),
		Errors:       s.metrics.errors.Load(),
		SimsRun:      s.metrics.simsRun.Load(),
		ActiveSims:   s.metrics.activeSims.Load(),
		CacheHits:    s.metrics.cacheHits.Load(),
		CacheMisses:  s.metrics.cacheMisses.Load(),
		Coalesced:    s.metrics.coalesced.Load(),
		CacheSize:    cs.Resident,
		Evictions:    cs.Evictions,
		TimingRuns:   s.metrics.timingRuns.Load(),
		Replays:      s.metrics.replays.Load(),
		TimingCached: ts.Resident,
	}
}

// expvar.Publish panics on duplicate registration, and tests construct
// many Servers per process, so the "dcgserve" var is registered once and
// always reads through a pointer to the most recently built server.
var (
	expvarOnce   sync.Once
	expvarServer atomic.Pointer[Server]
)

func (s *Server) publishExpvar() {
	expvarServer.Store(s)
	expvarOnce.Do(func() {
		expvar.Publish("dcgserve", expvar.Func(func() any {
			if srv := expvarServer.Load(); srv != nil {
				return srv.Snapshot()
			}
			return nil
		}))
	})
}
