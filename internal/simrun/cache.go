package simrun

import (
	"container/list"
	"context"
	"sync"
	"sync/atomic"

	"dcg/internal/core"
)

// Outcome classifies how a Do call was served.
type Outcome int

const (
	// OutcomeMiss: this call executed the simulation itself.
	OutcomeMiss Outcome = iota
	// OutcomeHit: the result was already memoised.
	OutcomeHit
	// OutcomeCoalesced: an identical run was already in flight; this call
	// waited for it instead of re-simulating.
	OutcomeCoalesced
)

// String names the outcome for logs and responses.
func (o Outcome) String() string {
	switch o {
	case OutcomeHit:
		return "cache"
	case OutcomeCoalesced:
		return "coalesced"
	default:
		return "simulated"
	}
}

// shardCount is the number of independent cache shards; a power of two so
// shard selection is a mask. 16 comfortably exceeds the worker-pool sizes
// the serving layer runs with, keeping lock contention negligible.
const shardCount = 16

// Cache is a sharded, request-coalescing LRU memo over simulation
// results. Concurrent Do calls with equal keys execute the run exactly
// once (singleflight); completed results are retained up to the capacity
// with per-shard least-recently-used eviction. All methods are safe for
// concurrent use.
type Cache struct {
	shards   [shardCount]shard
	capShard int // max resident entries per shard; 0 = unbounded

	hits      atomic.Uint64
	misses    atomic.Uint64
	coalesced atomic.Uint64
	evictions atomic.Uint64
}

type shard struct {
	mu      sync.Mutex
	entries map[Key]*list.Element // resident results, value = *entry
	order   list.List             // front = most recently used
	flight  map[Key]*flight
}

// entry is one resident cache value.
type entry struct {
	key Key
	res *core.Result
}

// flight is one in-progress run; followers wait on done.
type flight struct {
	done chan struct{}
	res  *core.Result
	err  error
}

// NewCache builds a cache holding up to capacity completed results
// (capacity <= 0 means unbounded — the batch experiments' configuration).
// The bound is enforced per shard, so the effective capacity is rounded up
// to a multiple of the shard count.
func NewCache(capacity int) *Cache {
	c := &Cache{}
	if capacity > 0 {
		c.capShard = (capacity + shardCount - 1) / shardCount
	}
	for i := range c.shards {
		c.shards[i].entries = make(map[Key]*list.Element)
		c.shards[i].flight = make(map[Key]*flight)
		c.shards[i].order.Init()
	}
	return c
}

func (c *Cache) shard(k Key) *shard {
	return &c.shards[k.hash()&(shardCount-1)]
}

// Do returns the memoised result for key, executing fn at most once per
// key across all concurrent callers. A caller that finds an identical run
// in flight waits for it (or for its own context) instead of re-running.
// Errors are returned to every waiter of the failed attempt but are not
// cached: the next Do retries.
//
// The executing caller's context drives the run; if it is canceled, its
// waiters receive the cancellation error and a later Do re-executes.
func (c *Cache) Do(ctx context.Context, key Key, fn func(context.Context) (*core.Result, error)) (*core.Result, Outcome, error) {
	s := c.shard(key)
	s.mu.Lock()
	if el, ok := s.entries[key]; ok {
		s.order.MoveToFront(el)
		s.mu.Unlock()
		c.hits.Add(1)
		return el.Value.(*entry).res, OutcomeHit, nil
	}
	if f, ok := s.flight[key]; ok {
		s.mu.Unlock()
		c.coalesced.Add(1)
		select {
		case <-f.done:
			return f.res, OutcomeCoalesced, f.err
		case <-ctx.Done():
			return nil, OutcomeCoalesced, ctx.Err()
		}
	}
	f := &flight{done: make(chan struct{})}
	s.flight[key] = f
	s.mu.Unlock()
	c.misses.Add(1)

	f.res, f.err = fn(ctx)

	s.mu.Lock()
	delete(s.flight, key)
	if f.err == nil {
		s.entries[key] = s.order.PushFront(&entry{key: key, res: f.res})
		if c.capShard > 0 && s.order.Len() > c.capShard {
			oldest := s.order.Back()
			s.order.Remove(oldest)
			delete(s.entries, oldest.Value.(*entry).key)
			c.evictions.Add(1)
		}
	}
	s.mu.Unlock()
	close(f.done)
	return f.res, OutcomeMiss, f.err
}

// Get returns the memoised result for key without executing anything.
func (c *Cache) Get(key Key) (*core.Result, bool) {
	s := c.shard(key)
	s.mu.Lock()
	defer s.mu.Unlock()
	if el, ok := s.entries[key]; ok {
		s.order.MoveToFront(el)
		return el.Value.(*entry).res, true
	}
	return nil, false
}

// Len returns the number of resident results.
func (c *Cache) Len() int {
	n := 0
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		n += s.order.Len()
		s.mu.Unlock()
	}
	return n
}

// Stats is a snapshot of the cache's activity counters.
type Stats struct {
	Hits      uint64 // served from the resident cache
	Misses    uint64 // executed a simulation
	Coalesced uint64 // waited on an identical in-flight run
	Evictions uint64 // resident results dropped by the LRU bound
	Resident  int    // results currently cached
}

// Stats snapshots the counters.
func (c *Cache) Stats() Stats {
	return Stats{
		Hits:      c.hits.Load(),
		Misses:    c.misses.Load(),
		Coalesced: c.coalesced.Load(),
		Evictions: c.evictions.Load(),
		Resident:  c.Len(),
	}
}
