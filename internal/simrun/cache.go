package simrun

import (
	"container/list"
	"context"
	"sync"
	"sync/atomic"
)

// Outcome classifies how a Do call was served.
type Outcome int

const (
	// OutcomeMiss: this call executed the simulation itself.
	OutcomeMiss Outcome = iota
	// OutcomeHit: the result was already memoised.
	OutcomeHit
	// OutcomeCoalesced: an identical run was already in flight; this call
	// waited for it instead of re-simulating.
	OutcomeCoalesced
	// OutcomeReplayed: the result was produced by replaying a cached
	// timing trace instead of running the core timing simulation. Only
	// the two-level Exec reports this.
	OutcomeReplayed
	// OutcomeStore: the result was loaded from the persistent artifact
	// store (a prior process had computed it). No simulation and no
	// replay ran. Only an Exec with a Store attached reports this.
	OutcomeStore
)

// String names the outcome for logs and responses.
func (o Outcome) String() string {
	switch o {
	case OutcomeHit:
		return "cache"
	case OutcomeCoalesced:
		return "coalesced"
	case OutcomeReplayed:
		return "replayed"
	case OutcomeStore:
		return "store"
	default:
		return "simulated"
	}
}

// Hashable is the key constraint for Cache: map-usable equality plus a
// 64-bit hash for shard selection.
type Hashable interface {
	comparable
	Hash() uint64
}

// shardCount is the number of independent cache shards; a power of two so
// shard selection is a mask. 16 comfortably exceeds the worker-pool sizes
// the serving layer runs with, keeping lock contention negligible.
const shardCount = 16

// Cache is a sharded, request-coalescing LRU memo from K to V. Concurrent
// Do calls with equal keys execute the underlying function exactly once
// (singleflight); completed values are retained up to the capacity with
// per-shard least-recently-used eviction. All methods are safe for
// concurrent use.
//
// The executor layers two of these: a Cache[Key, *core.Result] over final
// evaluations and a Cache[TimingKey, *core.Timing] over the expensive
// cycle-accurate timing passes that several evaluations share.
type Cache[K Hashable, V any] struct {
	shards   [shardCount]shard[K, V]
	capShard int // max resident entries per shard; 0 = unbounded

	hits      atomic.Uint64
	misses    atomic.Uint64
	coalesced atomic.Uint64
	evictions atomic.Uint64
}

type shard[K Hashable, V any] struct {
	mu      sync.Mutex
	entries map[K]*list.Element // resident values, value = *entry[K, V]
	order   list.List           // front = most recently used
	flight  map[K]*flight[V]
}

// entry is one resident cache value.
type entry[K Hashable, V any] struct {
	key K
	val V
}

// flight is one in-progress run; followers wait on done.
type flight[V any] struct {
	done chan struct{}
	val  V
	err  error
}

// NewCache builds a cache holding up to capacity completed values
// (capacity <= 0 means unbounded — the batch experiments' configuration).
// The bound is enforced per shard, so the effective capacity is rounded up
// to a multiple of the shard count.
func NewCache[K Hashable, V any](capacity int) *Cache[K, V] {
	c := &Cache[K, V]{}
	if capacity > 0 {
		c.capShard = (capacity + shardCount - 1) / shardCount
	}
	for i := range c.shards {
		c.shards[i].entries = make(map[K]*list.Element)
		c.shards[i].flight = make(map[K]*flight[V])
		c.shards[i].order.Init()
	}
	return c
}

func (c *Cache[K, V]) shard(k K) *shard[K, V] {
	return &c.shards[k.Hash()&(shardCount-1)]
}

// Do returns the memoised value for key, executing fn at most once per
// key across all concurrent callers. A caller that finds an identical run
// in flight waits for it (or for its own context) instead of re-running.
// Errors are returned to every waiter of the failed attempt but are not
// cached: the next Do retries.
//
// The executing caller's context drives the run; if it is canceled, its
// waiters receive the cancellation error and a later Do re-executes.
func (c *Cache[K, V]) Do(ctx context.Context, key K, fn func(context.Context) (V, error)) (V, Outcome, error) {
	s := c.shard(key)
	s.mu.Lock()
	if el, ok := s.entries[key]; ok {
		s.order.MoveToFront(el)
		s.mu.Unlock()
		c.hits.Add(1)
		return el.Value.(*entry[K, V]).val, OutcomeHit, nil
	}
	if f, ok := s.flight[key]; ok {
		s.mu.Unlock()
		c.coalesced.Add(1)
		select {
		case <-f.done:
			return f.val, OutcomeCoalesced, f.err
		case <-ctx.Done():
			var zero V
			return zero, OutcomeCoalesced, ctx.Err()
		}
	}
	f := &flight[V]{done: make(chan struct{})}
	s.flight[key] = f
	s.mu.Unlock()
	c.misses.Add(1)

	f.val, f.err = fn(ctx)

	s.mu.Lock()
	delete(s.flight, key)
	if f.err == nil {
		s.entries[key] = s.order.PushFront(&entry[K, V]{key: key, val: f.val})
		if c.capShard > 0 && s.order.Len() > c.capShard {
			oldest := s.order.Back()
			s.order.Remove(oldest)
			delete(s.entries, oldest.Value.(*entry[K, V]).key)
			c.evictions.Add(1)
		}
	}
	s.mu.Unlock()
	close(f.done)
	return f.val, OutcomeMiss, f.err
}

// Get returns the memoised value for key without executing anything.
func (c *Cache[K, V]) Get(key K) (V, bool) {
	s := c.shard(key)
	s.mu.Lock()
	defer s.mu.Unlock()
	if el, ok := s.entries[key]; ok {
		s.order.MoveToFront(el)
		return el.Value.(*entry[K, V]).val, true
	}
	var zero V
	return zero, false
}

// Len returns the number of resident values.
func (c *Cache[K, V]) Len() int {
	n := 0
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		n += s.order.Len()
		s.mu.Unlock()
	}
	return n
}

// Stats is a snapshot of a cache's activity counters.
type Stats struct {
	Hits      uint64 // served from the resident cache
	Misses    uint64 // executed the underlying function
	Coalesced uint64 // waited on an identical in-flight run
	Evictions uint64 // resident values dropped by the LRU bound
	Resident  int    // values currently cached
}

// Stats snapshots the counters.
func (c *Cache[K, V]) Stats() Stats {
	return Stats{
		Hits:      c.hits.Load(),
		Misses:    c.misses.Load(),
		Coalesced: c.coalesced.Load(),
		Evictions: c.evictions.Load(),
		Resident:  c.Len(),
	}
}
