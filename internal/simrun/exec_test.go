package simrun

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"

	"dcg/internal/core"
	"dcg/internal/usagetrace"
)

// countingExec wires fake hooks that count executions per layer.
func countingExec() (*Exec, *atomic.Int32, *atomic.Int32, *atomic.Int32) {
	e := NewExec(0, 0)
	var fulls, captures, evals atomic.Int32
	e.Full = func(ctx context.Context, k Key) (*core.Result, error) {
		fulls.Add(1)
		return fakeResult(k), nil
	}
	e.Capture = func(ctx context.Context, k Key) (*core.Result, *core.Timing, error) {
		captures.Add(1)
		return fakeResult(k), &core.Timing{Benchmark: k.Bench}, nil
	}
	e.Evaluate = func(k Key, t *core.Timing) (*core.Result, error) {
		evals.Add(1)
		if t == nil {
			return nil, errors.New("evaluate called without a timing")
		}
		return fakeResult(k), nil
	}
	return e, &fulls, &captures, &evals
}

func TestExecSharesOneTimingAcrossNeutralSchemes(t *testing.T) {
	e, fulls, captures, evals := countingExec()
	base := Key{Bench: "gzip", Insts: 1000}

	kinds := []core.SchemeKind{core.SchemeDCG, core.SchemeNone, core.SchemeOracle}
	for i, kind := range kinds {
		k := base
		k.Scheme = kind
		res, out, err := e.Do(context.Background(), k)
		if err != nil || res == nil {
			t.Fatalf("%v: res=%v err=%v", kind, res, err)
		}
		want := OutcomeReplayed
		if i == 0 {
			want = OutcomeMiss // first scheme executes the capture itself
		}
		if out != want {
			t.Errorf("%v: outcome %v, want %v", kind, out, want)
		}
	}
	if n := captures.Load(); n != 1 {
		t.Errorf("capture ran %d times for %d neutral schemes, want 1", n, len(kinds))
	}
	if n := evals.Load(); n != int32(len(kinds)-1) {
		t.Errorf("evaluate ran %d times, want %d", n, len(kinds)-1)
	}
	if n := fulls.Load(); n != 0 {
		t.Errorf("full simulation ran %d times, want 0", n)
	}
	if st := e.TimingStats(); st.Misses != 1 || st.Hits != 2 {
		t.Errorf("timing stats = %+v, want 1 miss / 2 hits", st)
	}

	// Everything is now result-cached: repeats touch neither level.
	for _, kind := range kinds {
		k := base
		k.Scheme = kind
		_, out, err := e.Do(context.Background(), k)
		if err != nil || out != OutcomeHit {
			t.Errorf("%v repeat: outcome=%v err=%v, want hit", kind, out, err)
		}
	}
	if captures.Load() != 1 || evals.Load() != 2 {
		t.Error("repeat requests re-executed work")
	}
}

func TestExecPLBBypassesTimingCache(t *testing.T) {
	e, fulls, captures, _ := countingExec()
	for _, kind := range []core.SchemeKind{core.SchemePLBOrig, core.SchemePLBExt} {
		k := Key{Bench: "mcf", Scheme: kind, Insts: 500}
		_, out, err := e.Do(context.Background(), k)
		if err != nil || out != OutcomeMiss {
			t.Fatalf("%v: outcome=%v err=%v", kind, out, err)
		}
	}
	if n := fulls.Load(); n != 2 {
		t.Errorf("full ran %d times, want 2", n)
	}
	if n := captures.Load(); n != 0 {
		t.Errorf("PLB triggered %d captures, want 0", n)
	}
	if st := e.TimingStats(); st.Misses != 0 {
		t.Errorf("PLB polluted the timing cache: %+v", st)
	}
}

func TestExecConcurrentNeutralSchemesOneCapture(t *testing.T) {
	e, fulls, captures, _ := countingExec()
	kinds := []core.SchemeKind{core.SchemeNone, core.SchemeDCG, core.SchemeOracle}
	var wg sync.WaitGroup
	for g := 0; g < 24; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			k := Key{Bench: "gcc", Scheme: kinds[g%len(kinds)], Insts: 2000}
			if _, _, err := e.Do(context.Background(), k); err != nil {
				t.Error(err)
			}
		}(g)
	}
	wg.Wait()
	if n := captures.Load(); n != 1 {
		t.Errorf("%d concurrent neutral requests executed %d captures, want 1", 24, n)
	}
	if fulls.Load() != 0 {
		t.Error("a neutral scheme fell through to the full simulator")
	}
}

func TestExecCaptureErrorsRetry(t *testing.T) {
	e, _, captures, _ := countingExec()
	boom := errors.New("boom")
	fail := true
	inner := e.Capture
	e.Capture = func(ctx context.Context, k Key) (*core.Result, *core.Timing, error) {
		if fail {
			captures.Add(1)
			return nil, nil, boom
		}
		return inner(ctx, k)
	}
	k := Key{Bench: "art", Scheme: core.SchemeDCG, Insts: 100}
	if _, _, err := e.Do(context.Background(), k); !errors.Is(err, boom) {
		t.Fatalf("err = %v, want boom", err)
	}
	fail = false
	res, out, err := e.Do(context.Background(), k)
	if err != nil || res == nil || out != OutcomeMiss {
		t.Fatalf("retry after failure: res=%v outcome=%v err=%v", res, out, err)
	}
}

func TestSingleLevelExecUsesRunnerOnly(t *testing.T) {
	var runs atomic.Int32
	e := NewSingleLevelExec(0, func(ctx context.Context, k Key) (*core.Result, error) {
		runs.Add(1)
		return fakeResult(k), nil
	})
	k := Key{Bench: "gzip", Scheme: core.SchemeDCG, Insts: 100}
	if _, out, err := e.Do(context.Background(), k); err != nil || out != OutcomeMiss {
		t.Fatalf("first: outcome=%v err=%v", out, err)
	}
	if _, out, err := e.Do(context.Background(), k); err != nil || out != OutcomeHit {
		t.Fatalf("second: outcome=%v err=%v", out, err)
	}
	if runs.Load() != 1 {
		t.Errorf("runner ran %d times, want 1", runs.Load())
	}
	if st := e.TimingStats(); st != (Stats{}) {
		t.Errorf("single-level exec reported timing stats %+v", st)
	}
}

// TestExecSharesOneDecodeAcrossNeutralSchemes drives the production hooks
// end to end and asserts the tentpole property at the executor level: all
// timing-neutral schemes riding one cached capture — coalesced requests,
// batch items, sweep followers all land here — share a single columnar
// trace decode. The leader's result rides the capture run itself (no
// decode); the first follower decodes; every later follower reuses.
func TestExecSharesOneDecodeAcrossNeutralSchemes(t *testing.T) {
	e := NewExec(0, 0)
	base := Key{Bench: "swim", Insts: 15_000, Warmup: 10_000}
	kinds := []core.SchemeKind{core.SchemeNone, core.SchemeDCG, core.SchemeOracle}

	decodes0 := usagetrace.Decodes()
	reuses0 := usagetrace.DecodeReuses()
	for _, kind := range kinds {
		k := base
		k.Scheme = kind
		if _, _, err := e.Do(context.Background(), k); err != nil {
			t.Fatalf("%v: %v", kind, err)
		}
	}
	if got := usagetrace.Decodes() - decodes0; got != 1 {
		t.Errorf("%d neutral schemes through the executor decoded the trace %d times, want 1", len(kinds), got)
	}
	if got := usagetrace.DecodeReuses() - reuses0; got != uint64(len(kinds)-2) {
		t.Errorf("decode reuses = %d, want %d (followers after the first)", got, len(kinds)-2)
	}
}

// TestExecReplaysThroughPackedKernel pins the routing at the executor
// level: follower evaluations of timing-neutral schemes ride the
// bit-packed replay kernel, not the scalar fused engine.
func TestExecReplaysThroughPackedKernel(t *testing.T) {
	e := NewExec(0, 0)
	base := Key{Bench: "art", Insts: 15_000, Warmup: 10_000}
	kinds := []core.SchemeKind{core.SchemeNone, core.SchemeDCG, core.SchemeOracle}

	packed0 := core.PackedReplaySchemes()
	fallback0 := core.PackedReplayFallbacks()
	fused0 := usagetrace.FusedSchemes()
	for _, kind := range kinds {
		k := base
		k.Scheme = kind
		if _, _, err := e.Do(context.Background(), k); err != nil {
			t.Fatalf("%v: %v", kind, err)
		}
	}
	// The leader rides the capture run; each follower is one packed
	// replay evaluation.
	if got := core.PackedReplaySchemes() - packed0; got != uint64(len(kinds)-1) {
		t.Errorf("packed replay served %d schemes, want %d (followers)", got, len(kinds)-1)
	}
	if got := core.PackedReplayFallbacks() - fallback0; got != 0 {
		t.Errorf("packed replay recorded %d fallbacks, want 0", got)
	}
	if got := usagetrace.FusedSchemes() - fused0; got != 0 {
		t.Errorf("%d schemes fell through to the scalar fused engine, want 0", got)
	}
}

// TestExecReplayMatchesFullRun drives the production hooks end to end: a
// replayed evaluation through the two-level executor must be bit-identical
// to an independent full simulation of the same key.
func TestExecReplayMatchesFullRun(t *testing.T) {
	e := NewExec(0, 0)
	base := Key{Bench: "gzip", Insts: 20_000, Warmup: 10_000}

	// Prime the timing level with the baseline scheme...
	kNone := base
	kNone.Scheme = core.SchemeNone
	if _, out, err := e.Do(context.Background(), kNone); err != nil || out != OutcomeMiss {
		t.Fatalf("prime: outcome=%v err=%v", out, err)
	}
	// ...then DCG must come from replay, identical to a direct full run.
	kDCG := base
	kDCG.Scheme = core.SchemeDCG
	viaReplay, out, err := e.Do(context.Background(), kDCG)
	if err != nil {
		t.Fatal(err)
	}
	if out != OutcomeReplayed {
		t.Fatalf("dcg outcome = %v, want replayed", out)
	}
	direct, err := Run(context.Background(), kDCG)
	if err != nil {
		t.Fatal(err)
	}
	if viaReplay.Cycles != direct.Cycles || viaReplay.AvgPower != direct.AvgPower ||
		viaReplay.Saving != direct.Saving || viaReplay.Energy != direct.Energy {
		t.Errorf("replayed result differs from direct run:\nreplay: cycles=%d power=%v saving=%v\ndirect: cycles=%d power=%v saving=%v",
			viaReplay.Cycles, viaReplay.AvgPower, viaReplay.Saving,
			direct.Cycles, direct.AvgPower, direct.Saving)
	}
	if st := e.TimingStats(); st.Misses != 1 || st.Hits != 1 {
		t.Errorf("timing stats = %+v, want 1 miss / 1 hit", st)
	}
}
