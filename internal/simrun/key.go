// Package simrun is the shared simulation-run layer: canonical keys
// identifying deterministic simulation work, executors that run it, and
// sharded, request-coalescing LRU caches over the completed values.
//
// Both batch users (internal/experiments' figure harnesses) and the
// serving layer (internal/server) memoise runs through this package, so a
// simulation configuration is only ever executed once per process no
// matter how many experiments or concurrent requests ask for it. The
// two-level Exec goes further: timing-neutral gating schemes (none, dcg,
// oracle) share one cycle-accurate timing capture per (workload, machine)
// and differ only in a cheap trace replay.
package simrun

import (
	"context"

	"dcg/internal/config"
	"dcg/internal/core"
)

// Key identifies one deterministic simulation result. Two runs with equal
// keys produce identical Results (the simulator is fully deterministic),
// which is what makes memoisation and request coalescing sound.
type Key struct {
	// Bench is the built-in benchmark name.
	Bench string

	// Scheme is the clock-gating methodology.
	Scheme core.SchemeKind

	// Deep selects the 20-stage pipeline of section 5.6.
	Deep bool

	// IntALU overrides the integer-ALU count when > 0 (section 4.4 sweep).
	IntALU int

	// Insts is the measured dynamic instruction count.
	Insts uint64

	// Warmup is the functional warm-up length (0 = simulator default).
	Warmup uint64
}

// Machine returns the processor configuration the key selects.
func (k Key) Machine() config.Config {
	m := config.Default()
	if k.Deep {
		m = config.Deep()
	}
	if k.IntALU > 0 {
		m.FU.IntALU = k.IntALU
	}
	return m
}

// TimingKey strips the gating scheme from a Key, keeping only the trace
// channel set the scheme requires: it identifies the core timing
// simulation alone. Every timing-neutral scheme with the same channel
// needs evaluated on the same workload and machine shares one TimingKey
// — and therefore one captured trace in the Exec's timing cache. The
// channel set stays part of the key so a usage-only capture (including
// every pre-channel v1 artifact in a persistent store) is never served
// to a value-dependent scheme.
func (k Key) TimingKey() TimingKey {
	return TimingKey{
		Bench: k.Bench, Deep: k.Deep, IntALU: k.IntALU, Insts: k.Insts, Warmup: k.Warmup,
		Channels: core.ChannelKey(core.SchemeChannels(k.Scheme)),
	}
}

// TimingKey identifies one cycle-accurate timing pass: the workload, the
// machine's timing-relevant configuration, and the captured trace's
// extra channel set (canonical comma-joined form; "" = usage only) —
// with no gating scheme. (Timing-neutral schemes do not perturb timing,
// so they never appear here; PLB does and is excluded from the timing
// cache entirely.)
type TimingKey struct {
	Bench    string
	Deep     bool
	IntALU   int
	Insts    uint64
	Warmup   uint64
	Channels string
}

// Machine returns the processor configuration the timing key selects.
func (k TimingKey) Machine() config.Config {
	return Key{Bench: k.Bench, Deep: k.Deep, IntALU: k.IntALU, Insts: k.Insts, Warmup: k.Warmup}.Machine()
}

const (
	fnvOffset = 14695981039346656037
	fnvPrime  = 1099511628211
)

func fnvString(h uint64, s string) uint64 {
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= fnvPrime
	}
	return h
}

func fnvWords(h uint64, words ...uint64) uint64 {
	for _, v := range words {
		for s := 0; s < 64; s += 8 {
			h ^= (v >> s) & 0xff
			h *= fnvPrime
		}
	}
	return h
}

func boolWord(b bool) uint64 {
	if b {
		return 1
	}
	return 0
}

// Hash mixes every field FNV-1a style; the cache uses it to pick a shard.
func (k Key) Hash() uint64 {
	h := fnvString(fnvOffset, k.Bench)
	h = fnvString(h, string(k.Scheme))
	return fnvWords(h, boolWord(k.Deep), uint64(k.IntALU), k.Insts, k.Warmup)
}

// Hash mixes every field FNV-1a style; the cache uses it to pick a shard.
func (k TimingKey) Hash() uint64 {
	h := fnvString(fnvOffset, k.Bench)
	h = fnvString(h, k.Channels)
	return fnvWords(h, boolWord(k.Deep), uint64(k.IntALU), k.Insts, k.Warmup)
}

func simulatorFor(m config.Config, warmup uint64) *core.Simulator {
	sim := core.NewSimulator(m)
	if warmup > 0 {
		sim.Warmup = warmup
	}
	return sim
}

// Run executes the full simulation the key identifies: core timing with
// the scheme attached live. The context is threaded into the cycle loop:
// cancellation aborts the run within a few thousand simulated cycles.
func Run(ctx context.Context, k Key) (*core.Result, error) {
	return simulatorFor(k.Machine(), k.Warmup).RunBenchmarkContext(ctx, k.Bench, k.Scheme, k.Insts)
}

// Capture executes the timing simulation the key identifies while
// recording its per-cycle usage trace. The returned Result is the
// evaluation of k.Scheme riding along on the capture run (bit-identical
// to a direct run); the Timing can then be replayed for any other
// timing-neutral scheme. Fails for schemes that perturb timing.
func Capture(ctx context.Context, k Key) (*core.Result, *core.Timing, error) {
	return simulatorFor(k.Machine(), k.Warmup).RunAndCapture(ctx, k.Bench, k.Scheme, k.Insts)
}

// Evaluate replays a captured timing trace under the key's scheme. The
// result is bit-identical to a full run with the same key. The replay
// goes through the fused decoded-trace path: every Evaluate against the
// same *core.Timing — coalesced requests, batch items, sweep followers —
// shares one memoized columnar decode instead of re-reading the encoded
// stream per scheme.
func Evaluate(k Key, t *core.Timing) (*core.Result, error) {
	results, err := simulatorFor(t.Machine, k.Warmup).EvaluateTimingAll(t, []core.SchemeKind{k.Scheme})
	if err != nil {
		return nil, err
	}
	return results[0], nil
}

// RunTelemetry executes the full simulation the key identifies with a
// telemetry observer attached (per-cycle usage vectors and gating
// decisions — the server's /v1/trace endpoint). Telemetry requires a
// live pass, so this path never consults the caches.
func RunTelemetry(ctx context.Context, k Key, tel core.RunTelemetry) (*core.Result, error) {
	sim := simulatorFor(k.Machine(), k.Warmup)
	sim.Telemetry = tel
	return sim.RunBenchmarkContext(ctx, k.Bench, k.Scheme, k.Insts)
}
