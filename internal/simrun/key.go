// Package simrun is the shared simulation-run layer: a canonical key
// identifying one deterministic simulation, an executor that runs it, and
// a sharded, request-coalescing LRU cache over completed results.
//
// Both batch users (internal/experiments' figure harnesses) and the
// serving layer (internal/server) memoise runs through this package, so a
// simulation configuration is only ever executed once per process no
// matter how many experiments or concurrent requests ask for it.
package simrun

import (
	"context"

	"dcg/internal/config"
	"dcg/internal/core"
)

// Key identifies one deterministic simulation run. Two runs with equal
// keys produce identical Results (the simulator is fully deterministic),
// which is what makes memoisation and request coalescing sound.
type Key struct {
	// Bench is the built-in benchmark name.
	Bench string

	// Scheme is the clock-gating methodology.
	Scheme core.SchemeKind

	// Deep selects the 20-stage pipeline of section 5.6.
	Deep bool

	// IntALU overrides the integer-ALU count when > 0 (section 4.4 sweep).
	IntALU int

	// Insts is the measured dynamic instruction count.
	Insts uint64

	// Warmup is the functional warm-up length (0 = simulator default).
	Warmup uint64
}

// Machine returns the processor configuration the key selects.
func (k Key) Machine() config.Config {
	m := config.Default()
	if k.Deep {
		m = config.Deep()
	}
	if k.IntALU > 0 {
		m.FU.IntALU = k.IntALU
	}
	return m
}

// hash mixes every field FNV-1a style; the cache uses it to pick a shard.
func (k Key) hash() uint64 {
	const (
		offset = 14695981039346656037
		prime  = 1099511628211
	)
	h := uint64(offset)
	for i := 0; i < len(k.Bench); i++ {
		h ^= uint64(k.Bench[i])
		h *= prime
	}
	deep := uint64(0)
	if k.Deep {
		deep = 1
	}
	for _, v := range [...]uint64{uint64(k.Scheme), deep, uint64(k.IntALU), k.Insts, k.Warmup} {
		for s := 0; s < 64; s += 8 {
			h ^= (v >> s) & 0xff
			h *= prime
		}
	}
	return h
}

// Run executes the simulation the key identifies. The context is threaded
// into the cycle loop: cancellation aborts the run within a few thousand
// simulated cycles.
func Run(ctx context.Context, k Key) (*core.Result, error) {
	sim := core.NewSimulator(k.Machine())
	if k.Warmup > 0 {
		sim.Warmup = k.Warmup
	}
	return sim.RunBenchmarkContext(ctx, k.Bench, k.Scheme, k.Insts)
}
