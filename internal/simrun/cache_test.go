package simrun

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"dcg/internal/core"
)

// fakeResult builds a distinguishable placeholder result.
func fakeResult(k Key) *core.Result {
	return &core.Result{Benchmark: k.Bench, Scheme: k.Scheme.String(), Cycles: k.Insts}
}

func TestDoMemoises(t *testing.T) {
	c := NewCache[Key, *core.Result](0)
	key := Key{Bench: "gzip", Scheme: core.SchemeDCG, Insts: 1000}
	var runs atomic.Int32
	fn := func(context.Context) (*core.Result, error) {
		runs.Add(1)
		return fakeResult(key), nil
	}
	res, out, err := c.Do(context.Background(), key, fn)
	if err != nil || out != OutcomeMiss || res == nil {
		t.Fatalf("first Do: res=%v outcome=%v err=%v", res, out, err)
	}
	res2, out, err := c.Do(context.Background(), key, fn)
	if err != nil || out != OutcomeHit {
		t.Fatalf("second Do: outcome=%v err=%v", out, err)
	}
	if res2 != res {
		t.Error("cache hit returned a different result pointer")
	}
	if n := runs.Load(); n != 1 {
		t.Errorf("fn ran %d times, want 1", n)
	}
	if st := c.Stats(); st.Hits != 1 || st.Misses != 1 || st.Resident != 1 {
		t.Errorf("stats = %+v", st)
	}
}

func TestDoCoalescesConcurrentIdenticalRequests(t *testing.T) {
	const waiters = 64
	c := NewCache[Key, *core.Result](0)
	key := Key{Bench: "mcf", Scheme: core.SchemeDCG, Insts: 5000}

	var runs atomic.Int32
	release := make(chan struct{})
	started := make(chan struct{})
	fn := func(context.Context) (*core.Result, error) {
		runs.Add(1)
		close(started)
		<-release
		return fakeResult(key), nil
	}

	var wg sync.WaitGroup
	outcomes := make([]Outcome, waiters)
	errs := make([]error, waiters)
	for i := 0; i < waiters; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, outcomes[i], errs[i] = c.Do(context.Background(), key, fn)
		}(i)
	}
	<-started
	// Give the remaining goroutines time to register as followers, then
	// let the single leader finish.
	time.Sleep(20 * time.Millisecond)
	close(release)
	wg.Wait()

	if n := runs.Load(); n != 1 {
		t.Fatalf("fn ran %d times for %d identical requests, want exactly 1", n, waiters)
	}
	var miss, coal, hit int
	for i := range outcomes {
		if errs[i] != nil {
			t.Fatalf("waiter %d: %v", i, errs[i])
		}
		switch outcomes[i] {
		case OutcomeMiss:
			miss++
		case OutcomeCoalesced:
			coal++
		case OutcomeHit:
			hit++
		}
	}
	if miss != 1 {
		t.Errorf("misses = %d, want 1 (coalesced %d, hits %d)", miss, coal, hit)
	}
	if coal+hit != waiters-1 {
		t.Errorf("coalesced %d + hits %d != %d", coal, hit, waiters-1)
	}
}

func TestErrorsAreNotCached(t *testing.T) {
	c := NewCache[Key, *core.Result](0)
	key := Key{Bench: "gcc", Scheme: core.SchemeNone, Insts: 100}
	boom := errors.New("boom")
	calls := 0
	fn := func(context.Context) (*core.Result, error) {
		calls++
		if calls == 1 {
			return nil, boom
		}
		return fakeResult(key), nil
	}
	if _, _, err := c.Do(context.Background(), key, fn); !errors.Is(err, boom) {
		t.Fatalf("first Do err = %v, want boom", err)
	}
	if st := c.Stats(); st.Resident != 0 {
		t.Fatalf("failed run was cached: %+v", st)
	}
	res, out, err := c.Do(context.Background(), key, fn)
	if err != nil || res == nil || out != OutcomeMiss {
		t.Fatalf("retry: res=%v outcome=%v err=%v", res, out, err)
	}
}

func TestLRUEvictionBoundsResidency(t *testing.T) {
	c := NewCache[Key, *core.Result](1) // one entry per shard
	for i := 0; i < 200; i++ {
		key := Key{Bench: fmt.Sprintf("b%03d", i), Scheme: core.SchemeDCG, Insts: uint64(i)}
		if _, _, err := c.Do(context.Background(), key, func(context.Context) (*core.Result, error) {
			return fakeResult(key), nil
		}); err != nil {
			t.Fatal(err)
		}
	}
	st := c.Stats()
	if st.Resident > shardCount {
		t.Errorf("resident %d exceeds capacity bound %d", st.Resident, shardCount)
	}
	if st.Evictions == 0 {
		t.Error("no evictions recorded after overflowing the capacity")
	}
}

func TestCoalescedWaiterHonoursItsOwnContext(t *testing.T) {
	c := NewCache[Key, *core.Result](0)
	key := Key{Bench: "art", Scheme: core.SchemeDCG, Insts: 1}
	release := make(chan struct{})
	started := make(chan struct{})
	go c.Do(context.Background(), key, func(context.Context) (*core.Result, error) {
		close(started)
		<-release
		return fakeResult(key), nil
	})
	<-started

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, out, err := c.Do(ctx, key, nil) // fn unused: the run is in flight
	if !errors.Is(err, context.Canceled) || out != OutcomeCoalesced {
		t.Errorf("canceled waiter: outcome=%v err=%v", out, err)
	}
	close(release)
}

func TestConcurrentMixedKeys(t *testing.T) {
	c := NewCache[Key, *core.Result](8)
	keys := make([]Key, 24)
	for i := range keys {
		keys[i] = Key{Bench: fmt.Sprintf("k%d", i), Scheme: core.AllSchemes()[i%4], Insts: uint64(i)}
	}
	var wg sync.WaitGroup
	for g := 0; g < 16; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				k := keys[(g*7+i)%len(keys)]
				res, _, err := c.Do(context.Background(), k, func(context.Context) (*core.Result, error) {
					return fakeResult(k), nil
				})
				if err != nil {
					t.Error(err)
					return
				}
				if res.Benchmark != k.Bench {
					t.Errorf("got result for %q, want %q", res.Benchmark, k.Bench)
					return
				}
			}
		}(g)
	}
	wg.Wait()
}

func TestRunExecutesRealSimulation(t *testing.T) {
	key := Key{Bench: "gzip", Scheme: core.SchemeDCG, Insts: 3000, Warmup: 1000}
	res, err := Run(context.Background(), key)
	if err != nil {
		t.Fatal(err)
	}
	if res.Committed == 0 || res.Saving <= 0 {
		t.Errorf("implausible result: committed=%d saving=%f", res.Committed, res.Saving)
	}
}

func TestRunHonoursCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := Run(ctx, Key{Bench: "gzip", Scheme: core.SchemeDCG, Insts: 100_000})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

func TestKeyMachineOverrides(t *testing.T) {
	if m := (Key{IntALU: 4}).Machine(); m.FU.IntALU != 4 {
		t.Errorf("IntALU override ignored: %d", m.FU.IntALU)
	}
	if m := (Key{Deep: true}).Machine(); m.Pipeline.Depth <= 8 {
		t.Errorf("deep machine depth = %d", m.Pipeline.Depth)
	}
}
