package simrun

import (
	"context"
	"log/slog"
	"time"

	"dcg/internal/core"
	"dcg/internal/obs"
	"dcg/internal/usagetrace"
)

// Exec is the two-level simulation executor:
//
//	level 1 (timings): (workload, machine) → captured timing trace
//	level 2 (results): (workload, machine, scheme) → evaluated Result
//
// A request for a timing-neutral scheme (none, dcg, oracle — anything
// that cannot perturb the core's cycle-by-cycle behaviour) first consults
// the result cache, then the timing cache: on a timing hit the scheme is
// evaluated by replaying the cached trace, which skips the cycle-accurate
// core entirely. On a timing miss the capture run evaluates the requested
// scheme while recording, so the first scheme per workload pays no replay
// on top of its simulation. Schemes that do perturb timing (the PLB
// variants throttle issue width from IPC feedback) bypass the timing
// level and always run the full simulation.
//
// Both levels coalesce concurrent identical requests, so a burst of
// scheme evaluations for one workload performs exactly one timing pass.
type Exec struct {
	results *Cache[Key, *core.Result]
	timings *Cache[TimingKey, *core.Timing]

	// Full runs the complete simulation (timing + live scheme). Capture
	// runs it while recording a trace; Evaluate replays a trace under a
	// scheme. Exported as seams so tests can count or fake executions;
	// NewExec installs the production implementations.
	Full     func(ctx context.Context, k Key) (*core.Result, error)
	Capture  func(ctx context.Context, k Key) (*core.Result, *core.Timing, error)
	Evaluate func(k Key, t *core.Timing) (*core.Result, error)

	// Store is an optional persistent tier (internal/store) consulted
	// underneath both in-memory levels: a result-cache miss first asks the
	// store before simulating, a timing-cache miss first asks the store
	// before capturing, and every freshly computed result/timing is
	// written back. Attaching a store is what makes a restarted process
	// warm. Nil disables the tier.
	Store PersistentTier
}

// PersistentTier is a durable artifact layer underneath the in-memory
// caches. Implementations must be safe for concurrent use; Get misses and
// Put failures are expected to be absorbed internally (logged/counted),
// never surfaced as request errors — the tier is an accelerator, not a
// source of truth. The context carries observability state (logger,
// trace span) and, for a future remote tier, cancellation; it must not
// change which artifact a key maps to.
type PersistentTier interface {
	GetResult(ctx context.Context, k Key) (*core.Result, bool)
	PutResult(ctx context.Context, k Key, r *core.Result)
	GetTiming(ctx context.Context, k TimingKey) (*core.Timing, bool)
	PutTiming(ctx context.Context, k TimingKey, t *core.Timing)
}

// NewExec builds the production two-level executor. resultCap bounds the
// result cache and timingCap the timing cache; <= 0 means unbounded.
// Timing traces are megabytes each (vs kilobytes per result), so serving
// deployments should keep timingCap small.
func NewExec(resultCap, timingCap int) *Exec {
	return &Exec{
		results:  NewCache[Key, *core.Result](resultCap),
		timings:  NewCache[TimingKey, *core.Timing](timingCap),
		Full:     Run,
		Capture:  Capture,
		Evaluate: Evaluate,
	}
}

// NewSingleLevelExec builds an executor with no timing cache: every miss
// calls run. It preserves the old one-level behaviour for callers that
// inject a custom runner (the server's test seam).
func NewSingleLevelExec(resultCap int, run func(ctx context.Context, k Key) (*core.Result, error)) *Exec {
	return &Exec{
		results: NewCache[Key, *core.Result](resultCap),
		Full:    run,
	}
}

// Do returns the result for k, reusing both cache levels. The outcome
// reports how the call was served: OutcomeHit/OutcomeCoalesced from the
// result cache, OutcomeReplayed when a cached timing trace was replayed,
// OutcomeMiss when a full simulation (or capture) ran.
func (e *Exec) Do(ctx context.Context, k Key) (*core.Result, Outcome, error) {
	// The lookup span covers the whole two-level resolution; its outcome
	// attribute is the cache-lookup verdict (cache/coalesced/replayed/
	// store/simulated). Stage spans below attribute where the time went.
	ctx, sp := obs.StartSpan(ctx, "simrun.lookup")
	sp.SetAttr("bench", k.Bench)
	sp.SetAttr("scheme", k.Scheme.String())
	sp.SetAttrInt("insts", int64(k.Insts))
	res, out, err := e.do(ctx, k)
	sp.SetAttr("outcome", out.String())
	sp.SetError(err)
	sp.Finish()
	if lg := obs.Logger(ctx); lg.Enabled(ctx, slog.LevelDebug) {
		attrs := []any{
			"bench", k.Bench, "scheme", k.Scheme.String(), "insts", k.Insts,
			"outcome", out.String(),
		}
		if err != nil {
			attrs = append(attrs, "err", err)
		}
		lg.Debug("simrun: do", attrs...)
	}
	return res, out, err
}

// do is Do without the logging wrapper.
func (e *Exec) do(ctx context.Context, k Key) (*core.Result, Outcome, error) {
	fromStore := false
	if e.timings == nil || !core.TimingNeutral(k.Scheme) {
		res, out, err := e.results.Do(ctx, k, func(ctx context.Context) (*core.Result, error) {
			if r, ok := e.storeResult(ctx, k); ok {
				fromStore = true
				return r, nil
			}
			_, sp := obs.StartSpan(ctx, "sim.full")
			sp.SetAttr("bench", k.Bench)
			sp.SetAttr("scheme", k.Scheme.String())
			r, err := e.Full(ctx, k)
			sp.SetError(err)
			sp.Finish()
			if err == nil && e.Store != nil {
				e.Store.PutResult(ctx, k, r)
			}
			return r, err
		})
		if err == nil && out == OutcomeMiss && fromStore {
			out = OutcomeStore
		}
		return res, out, err
	}
	replayed := false
	res, out, err := e.results.Do(ctx, k, func(ctx context.Context) (*core.Result, error) {
		if r, ok := e.storeResult(ctx, k); ok {
			fromStore = true
			return r, nil
		}
		// inline carries the capture run's own evaluation out of the
		// timing-level closure: when this call is the one that executes
		// the capture, the requested scheme rode along and no replay is
		// needed. When the timing level hits (or coalesces with another
		// scheme's capture), inline stays nil and we replay.
		lg := obs.Logger(ctx)
		var inline *core.Result
		tm, _, err := e.timings.Do(ctx, k.TimingKey(), func(ctx context.Context) (*core.Timing, error) {
			if t, ok := e.storeTiming(ctx, k.TimingKey()); ok {
				return t, nil
			}
			_, sp := obs.StartSpan(ctx, "sim.capture")
			sp.SetAttr("bench", k.Bench)
			sp.SetAttrInt("insts", int64(k.Insts))
			sp.SetAttr("channels", k.TimingKey().Channels)
			start := time.Now()
			r, t, err := e.Capture(ctx, k)
			inline = r
			sp.SetError(err)
			if err == nil {
				if sp != nil && t.Trace != nil {
					sp.SetAttrInt("trace_bytes", int64(t.Trace.SizeBytes()))
				}
				sp.Finish()
				if e.Store != nil {
					e.Store.PutTiming(ctx, k.TimingKey(), t)
				}
				if lg.Enabled(ctx, slog.LevelDebug) {
					lg.Debug("simrun: timing captured", "bench", k.Bench,
						"insts", k.Insts, "trace_bytes", t.Trace.SizeBytes(),
						"elapsed_ms", float64(time.Since(start).Microseconds())/1000)
				}
			} else {
				sp.Finish()
			}
			return t, err
		})
		if err != nil {
			return nil, err
		}
		if inline != nil {
			if e.Store != nil {
				e.Store.PutResult(ctx, k, inline)
			}
			return inline, nil
		}
		replayed = true
		rctx, sp := obs.StartSpan(ctx, "sim.replay")
		sp.SetAttr("bench", k.Bench)
		sp.SetAttr("scheme", k.Scheme.String())
		if info, ok := core.SchemeInfoFor(k.Scheme); ok {
			// The registry's replay capability is what routes the scheme
			// (bit-packed kernel vs the scalar fused engine), so the span
			// records the route without racing on the global counters.
			sp.SetAttr("engine", info.Replay.String())
		}
		sp.SetAttrInt("replay_par", int64(core.ReplayParallelism()))
		if sp != nil && tm.Trace != nil {
			// Decode is memoized per trace, so forcing it here only moves
			// the work under its own span: a fresh decode shows up as
			// milliseconds, a reuse as nanoseconds. Skipped entirely when
			// tracing is off.
			_, dsp := obs.StartSpan(rctx, "trace.decode")
			dsp.SetAttrInt("trace_bytes", int64(tm.Trace.SizeBytes()))
			dsp.SetAttrInt("decode_par", int64(usagetrace.DecodeParallelism()))
			_, derr := tm.Trace.Decode()
			dsp.SetError(derr)
			dsp.Finish()
		}
		start := time.Now()
		res, err := e.Evaluate(k, tm)
		sp.SetError(err)
		sp.Finish()
		if err == nil {
			if e.Store != nil {
				e.Store.PutResult(ctx, k, res)
			}
			if lg.Enabled(ctx, slog.LevelDebug) {
				lg.Debug("simrun: trace replayed", "bench", k.Bench,
					"scheme", k.Scheme.String(),
					"elapsed_ms", float64(time.Since(start).Microseconds())/1000)
			}
		}
		return res, err
	})
	if err == nil && out == OutcomeMiss {
		switch {
		case fromStore:
			out = OutcomeStore
		case replayed:
			out = OutcomeReplayed
		}
	}
	return res, out, err
}

// storeResult consults the persistent tier for a finished result.
func (e *Exec) storeResult(ctx context.Context, k Key) (*core.Result, bool) {
	if e.Store == nil {
		return nil, false
	}
	r, ok := e.Store.GetResult(ctx, k)
	if ok {
		if lg := obs.Logger(ctx); lg.Enabled(ctx, slog.LevelDebug) {
			lg.Debug("simrun: result from store", "bench", k.Bench, "scheme", k.Scheme.String())
		}
	}
	return r, ok
}

// storeTiming consults the persistent tier for a captured timing trace.
func (e *Exec) storeTiming(ctx context.Context, k TimingKey) (*core.Timing, bool) {
	if e.Store == nil {
		return nil, false
	}
	t, ok := e.Store.GetTiming(ctx, k)
	if ok {
		if lg := obs.Logger(ctx); lg.Enabled(ctx, slog.LevelDebug) {
			lg.Debug("simrun: timing from store", "bench", k.Bench, "insts", k.Insts)
		}
	}
	return t, ok
}

// Get returns the memoised result for k without executing anything.
func (e *Exec) Get(k Key) (*core.Result, bool) {
	return e.results.Get(k)
}

// ResultStats snapshots the result-level cache counters.
func (e *Exec) ResultStats() Stats { return e.results.Stats() }

// TimingStats snapshots the timing-level cache counters. Misses count
// core timing simulations actually executed; hits and coalesced count
// evaluations that shared a previously captured trace. Zero-valued when
// the executor is single-level.
func (e *Exec) TimingStats() Stats {
	if e.timings == nil {
		return Stats{}
	}
	return e.timings.Stats()
}
