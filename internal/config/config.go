// Package config defines the processor configuration, mirroring Table 1 of
// the paper and the pipeline-depth variants of section 5.6.
package config

import "fmt"

// CacheConfig describes one cache level.
type CacheConfig struct {
	Name       string
	SizeBytes  int
	Assoc      int
	LineBytes  int
	HitLatency int // cycles
	Ports      int // simultaneous accesses per cycle
}

// Sets returns the number of sets implied by size/assoc/line.
func (c CacheConfig) Sets() int {
	denom := c.Assoc * c.LineBytes
	if denom == 0 {
		return 0
	}
	return c.SizeBytes / denom
}

// Validate checks structural sanity of the cache geometry.
func (c CacheConfig) Validate() error {
	if c.SizeBytes <= 0 || c.Assoc <= 0 || c.LineBytes <= 0 {
		return fmt.Errorf("config: cache %s has non-positive geometry", c.Name)
	}
	if c.SizeBytes%(c.Assoc*c.LineBytes) != 0 {
		return fmt.Errorf("config: cache %s size %d not divisible by assoc*line", c.Name, c.SizeBytes)
	}
	s := c.Sets()
	if s&(s-1) != 0 {
		return fmt.Errorf("config: cache %s set count %d not a power of two", c.Name, s)
	}
	if c.HitLatency < 1 {
		return fmt.Errorf("config: cache %s hit latency must be >= 1", c.Name)
	}
	if c.Ports < 1 {
		return fmt.Errorf("config: cache %s needs at least one port", c.Name)
	}
	return nil
}

// BPredKind selects the direction predictor implementation.
type BPredKind int

const (
	// BPredTwoLevel is the paper's Table 1 predictor.
	BPredTwoLevel BPredKind = iota
	// BPredBimodal is a classic 2-bit-counter table (for predictor
	// sensitivity studies).
	BPredBimodal
)

func (k BPredKind) String() string {
	if k == BPredBimodal {
		return "bimodal"
	}
	return "2-level"
}

// BPredConfig describes the branch prediction machinery (Table 1: 2-level,
// 8192+8192 entries, 4-bit history, 32-entry RAS, 8192-entry 4-way BTB,
// 8-cycle mispredict penalty).
type BPredConfig struct {
	Kind             BPredKind
	L1Entries        int // first-level (history) table entries
	L2Entries        int // second-level (pattern/counter) table entries
	HistoryBits      int
	BTBEntries       int
	BTBAssoc         int
	RASEntries       int
	MispredictPenaly int // extra front-end redirect cycles
}

// FUConfig describes the functional unit pool (Table 1: 6 integer ALUs,
// 2 integer multiply/divide, 4 FP ALUs, 4 FP multiply/divide).
type FUConfig struct {
	IntALU  int
	IntMult int // shared multiply/divide units
	FPALU   int
	FPMult  int // shared FP multiply/divide units

	// Operation latencies (cycles, fully pipelined unless Init < Lat).
	IntALULat  int
	IntMultLat int
	IntDivLat  int
	FPALULat   int
	FPMultLat  int
	FPDivLat   int
}

// Total returns the total number of execution units.
func (f FUConfig) Total() int { return f.IntALU + f.IntMult + f.FPALU + f.FPMult }

// PipelineConfig describes stage structure. The paper's baseline is the
// 8-stage pipeline of Figure 3 (fetch, decode, rename, issue, regread,
// execute, memory, writeback); section 5.6 studies a 20-stage variant where
// extra stages are added to existing steps.
type PipelineConfig struct {
	// Depth is the total number of stages (8 for baseline, 20 for the
	// deep-pipeline study). Extra stages beyond 8 are distributed by
	// ExtraFrontEnd/ExtraBackEnd.
	Depth int

	// ExtraFrontEnd is the number of additional latch stages before and
	// including issue (fetch/decode/rename/issue lengthening). Latches in
	// these stages are NOT gatable by DCG (no advance information).
	ExtraFrontEnd int

	// ExtraBackEnd is the number of additional latch stages after issue
	// (regread/execute/memory/writeback lengthening). These latches ARE
	// gatable by DCG.
	ExtraBackEnd int
}

// BaseStages is the number of stages in the paper's baseline pipeline.
const BaseStages = 8

// Validate checks the stage arithmetic.
func (p PipelineConfig) Validate() error {
	if p.Depth < BaseStages {
		return fmt.Errorf("config: pipeline depth %d < base %d", p.Depth, BaseStages)
	}
	if p.ExtraFrontEnd < 0 || p.ExtraBackEnd < 0 {
		return fmt.Errorf("config: negative extra stage counts")
	}
	if BaseStages+p.ExtraFrontEnd+p.ExtraBackEnd != p.Depth {
		return fmt.Errorf("config: depth %d != base %d + front %d + back %d",
			p.Depth, BaseStages, p.ExtraFrontEnd, p.ExtraBackEnd)
	}
	return nil
}

// Config is the full processor configuration.
type Config struct {
	// IssueWidth is the machine width (fetch/decode/rename/issue/commit
	// width). Table 1: 8-way issue.
	IssueWidth int

	// WindowSize is the instruction window / ROB size (Table 1: 128).
	WindowSize int

	// LSQSize is the load/store queue size (Table 1: 64).
	LSQSize int

	// OperandWidth is the datapath width in bits (64, per section 3.2's
	// 8 x 2 x 64 latch sizing example).
	OperandWidth int

	FU     FUConfig
	BPred  BPredConfig
	IL1    CacheConfig
	DL1    CacheConfig
	L2     CacheConfig
	MemLat int // main memory latency, cycles (Table 1: 100)

	// MSHRs bounds the D-cache's outstanding misses (memory-level
	// parallelism); further misses queue. sim-outorder-style cores are
	// commonly configured with 8.
	MSHRs int

	Pipeline PipelineConfig

	// FUSelection is the execution-unit selection policy (section 3.1).
	FUSelection FUSelection

	// PerfectBPred makes every control-flow prediction correct (an
	// oracle front end), used to ablate how much of DCG's opportunity
	// comes from misprediction stalls.
	PerfectBPred bool

	// StoreDelayPolicy selects how DCG handles stores whose D-cache access
	// timing is not pre-determinable (section 3.3): "advance" assumes the
	// LSQ exposes the access one cycle ahead (possibility 1), "delay"
	// delays the store one cycle to set up the clock-gate control
	// (possibility 2).
	StoreDelayPolicy StoreDelay
}

// FUSelection selects the execution-unit selection policy.
type FUSelection int

const (
	// SelectSequential is the paper's section 3.1 policy: statically
	// prioritised units, lowest-index free unit first, so low-index units
	// stay ungated and high-index units stay gated — minimising
	// clock-gate control toggling and di/dt noise.
	SelectSequential FUSelection = iota
	// SelectRoundRobin rotates the starting unit each grant; used by the
	// ablation study to quantify what sequential priority buys.
	SelectRoundRobin
)

func (f FUSelection) String() string {
	if f == SelectRoundRobin {
		return "round-robin"
	}
	return "sequential"
}

// StoreDelay enumerates the section 3.3 store handling options.
type StoreDelay int

const (
	// StoreAdvanceKnowledge: the LSQ exposes an upcoming store access one
	// cycle early; no delay needed.
	StoreAdvanceKnowledge StoreDelay = iota
	// StoreOneCycleDelay: stores are delayed one cycle so clock-gate
	// control can be set up.
	StoreOneCycleDelay
)

func (s StoreDelay) String() string {
	if s == StoreOneCycleDelay {
		return "delay"
	}
	return "advance"
}

// Default returns the paper's Table 1 baseline configuration.
func Default() Config {
	return Config{
		IssueWidth:   8,
		WindowSize:   128,
		LSQSize:      64,
		OperandWidth: 64,
		FU: FUConfig{
			IntALU:  6, // section 4.4: 6 integer ALUs is power/perf optimal
			IntMult: 2,
			FPALU:   4,
			FPMult:  4,

			IntALULat:  1,
			IntMultLat: 3,
			IntDivLat:  20,
			FPALULat:   2,
			FPMultLat:  4,
			FPDivLat:   12,
		},
		BPred: BPredConfig{
			L1Entries:        8192,
			L2Entries:        8192,
			HistoryBits:      4,
			BTBEntries:       8192,
			BTBAssoc:         4,
			RASEntries:       32,
			MispredictPenaly: 8,
		},
		IL1:    CacheConfig{Name: "il1", SizeBytes: 64 << 10, Assoc: 2, LineBytes: 32, HitLatency: 2, Ports: 1},
		DL1:    CacheConfig{Name: "dl1", SizeBytes: 64 << 10, Assoc: 2, LineBytes: 32, HitLatency: 2, Ports: 2},
		L2:     CacheConfig{Name: "l2", SizeBytes: 2 << 20, Assoc: 8, LineBytes: 64, HitLatency: 12, Ports: 1},
		MemLat: 100,
		MSHRs:  8,
		Pipeline: PipelineConfig{
			Depth: 8,
		},
		StoreDelayPolicy: StoreAdvanceKnowledge,
	}
}

// Deep returns the 20-stage deep-pipeline configuration of section 5.6.
// Twelve extra stages are added; following the paper's observation that new
// stages for any step except fetch, decode or issue are gatable, we lengthen
// the front end by 4 (fetch/decode/issue lengthening, not gatable) and the
// back end by 8 (regread/execute/memory/writeback lengthening, gatable).
func Deep() Config {
	c := Default()
	c.Pipeline = PipelineConfig{Depth: 20, ExtraFrontEnd: 4, ExtraBackEnd: 8}
	// Deeper pipe means a larger mispredict penalty.
	c.BPred.MispredictPenaly = 14
	return c
}

// Validate checks the whole configuration.
func (c Config) Validate() error {
	if c.IssueWidth < 1 || c.IssueWidth > 64 {
		return fmt.Errorf("config: issue width %d out of range", c.IssueWidth)
	}
	if c.WindowSize < c.IssueWidth {
		return fmt.Errorf("config: window %d smaller than issue width %d", c.WindowSize, c.IssueWidth)
	}
	if c.LSQSize < 1 {
		return fmt.Errorf("config: LSQ size must be positive")
	}
	if c.OperandWidth != 32 && c.OperandWidth != 64 {
		return fmt.Errorf("config: operand width %d unsupported", c.OperandWidth)
	}
	if c.FU.Total() < 1 {
		return fmt.Errorf("config: no functional units")
	}
	if c.FU.IntALULat < 1 || c.FU.IntMultLat < 1 || c.FU.IntDivLat < 1 ||
		c.FU.FPALULat < 1 || c.FU.FPMultLat < 1 || c.FU.FPDivLat < 1 {
		return fmt.Errorf("config: functional unit latencies must be >= 1")
	}
	for _, cc := range []CacheConfig{c.IL1, c.DL1, c.L2} {
		if err := cc.Validate(); err != nil {
			return err
		}
	}
	if c.MemLat < 1 {
		return fmt.Errorf("config: memory latency must be >= 1")
	}
	if c.MSHRs < 1 {
		return fmt.Errorf("config: need at least one MSHR")
	}
	if err := c.Pipeline.Validate(); err != nil {
		return err
	}
	return nil
}

// BackEndLatchStages returns the number of gatable latch stages: the
// baseline gatable latches are rename, regread, execute, memory, writeback
// (section 2.2.1) plus any extra back-end stages.
func (c Config) BackEndLatchStages() int {
	return 5 + c.Pipeline.ExtraBackEnd
}

// FrontEndLatchStages returns the number of non-gatable latch stages
// (fetch, decode, issue boundaries in the baseline, plus extra front-end
// stages).
func (c Config) FrontEndLatchStages() int {
	return 3 + c.Pipeline.ExtraFrontEnd
}

// TotalLatchStages returns the total pipeline latch stage count.
func (c Config) TotalLatchStages() int {
	return c.FrontEndLatchStages() + c.BackEndLatchStages()
}
