package config

import "testing"

func TestDefaultMatchesTable1(t *testing.T) {
	c := Default()
	if err := c.Validate(); err != nil {
		t.Fatalf("default config invalid: %v", err)
	}
	if c.IssueWidth != 8 {
		t.Errorf("issue width = %d, want 8", c.IssueWidth)
	}
	if c.WindowSize != 128 {
		t.Errorf("window = %d, want 128", c.WindowSize)
	}
	if c.LSQSize != 64 {
		t.Errorf("LSQ = %d, want 64", c.LSQSize)
	}
	// Section 4.4: 6 integer ALUs are the power/performance optimum.
	if c.FU.IntALU != 6 || c.FU.IntMult != 2 || c.FU.FPALU != 4 || c.FU.FPMult != 4 {
		t.Errorf("FU pool = %+v", c.FU)
	}
	if c.BPred.L1Entries != 8192 || c.BPred.L2Entries != 8192 || c.BPred.HistoryBits != 4 {
		t.Errorf("bpred = %+v", c.BPred)
	}
	if c.BPred.BTBEntries != 8192 || c.BPred.BTBAssoc != 4 || c.BPred.RASEntries != 32 {
		t.Errorf("btb/ras = %+v", c.BPred)
	}
	if c.BPred.MispredictPenaly != 8 {
		t.Errorf("mispredict penalty = %d, want 8", c.BPred.MispredictPenaly)
	}
	if c.DL1.SizeBytes != 64<<10 || c.DL1.Assoc != 2 || c.DL1.HitLatency != 2 {
		t.Errorf("DL1 = %+v", c.DL1)
	}
	if c.L2.SizeBytes != 2<<20 || c.L2.Assoc != 8 || c.L2.HitLatency != 12 {
		t.Errorf("L2 = %+v", c.L2)
	}
	if c.MemLat != 100 {
		t.Errorf("memory latency = %d, want 100", c.MemLat)
	}
	if c.Pipeline.Depth != 8 {
		t.Errorf("depth = %d, want 8", c.Pipeline.Depth)
	}
}

func TestDeepPipeline(t *testing.T) {
	c := Deep()
	if err := c.Validate(); err != nil {
		t.Fatalf("deep config invalid: %v", err)
	}
	if c.Pipeline.Depth != 20 {
		t.Errorf("deep depth = %d, want 20", c.Pipeline.Depth)
	}
	if got := c.TotalLatchStages(); got != 20 {
		t.Errorf("total latch stages = %d, want 20", got)
	}
	// The baseline gatable stages are rename/RF/EX/MEM/WB (5); extra
	// back-end stages add to them.
	if got := c.BackEndLatchStages(); got != 5+c.Pipeline.ExtraBackEnd {
		t.Errorf("back-end stages = %d", got)
	}
}

func TestLatchStageSplitBaseline(t *testing.T) {
	c := Default()
	if c.FrontEndLatchStages() != 3 {
		t.Errorf("front-end latch stages = %d, want 3 (fetch/decode/issue)", c.FrontEndLatchStages())
	}
	if c.BackEndLatchStages() != 5 {
		t.Errorf("back-end latch stages = %d, want 5 (rename/RF/EX/MEM/WB)", c.BackEndLatchStages())
	}
}

func TestCacheGeometry(t *testing.T) {
	c := Default().DL1
	if got := c.Sets(); got != 64<<10/(2*32) {
		t.Errorf("sets = %d", got)
	}
	bad := c
	bad.SizeBytes = 60 << 10 // not divisible
	if bad.Validate() == nil {
		t.Error("invalid cache size accepted")
	}
	bad = c
	bad.Ports = 0
	if bad.Validate() == nil {
		t.Error("zero ports accepted")
	}
	bad = c
	bad.HitLatency = 0
	if bad.Validate() == nil {
		t.Error("zero latency accepted")
	}
}

func TestConfigValidation(t *testing.T) {
	mutations := []func(*Config){
		func(c *Config) { c.IssueWidth = 0 },
		func(c *Config) { c.WindowSize = 4 },
		func(c *Config) { c.LSQSize = 0 },
		func(c *Config) { c.OperandWidth = 48 },
		func(c *Config) { c.FU = FUConfig{} },
		func(c *Config) { c.FU.IntALULat = 0 },
		func(c *Config) { c.MemLat = 0 },
		func(c *Config) { c.Pipeline.Depth = 4 },
		func(c *Config) { c.Pipeline = PipelineConfig{Depth: 20, ExtraFrontEnd: 1, ExtraBackEnd: 1} },
	}
	for i, mut := range mutations {
		c := Default()
		mut(&c)
		if c.Validate() == nil {
			t.Errorf("mutation %d accepted", i)
		}
	}
}

func TestStoreDelayString(t *testing.T) {
	if StoreAdvanceKnowledge.String() != "advance" || StoreOneCycleDelay.String() != "delay" {
		t.Error("store delay policy names wrong")
	}
}
