// Package report serialises simulation results and experiment tables to
// JSON and CSV, so the reproduced figures can be plotted or diffed with
// external tools.
package report

import (
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strconv"

	"dcg/internal/core"
	"dcg/internal/experiments"
)

// RunRecord is a flattened, serialisation-friendly view of a run result.
type RunRecord struct {
	Benchmark string  `json:"benchmark"`
	Scheme    string  `json:"scheme"`
	Depth     int     `json:"pipelineDepth"`
	Insts     uint64  `json:"instructions"`
	Cycles    uint64  `json:"cycles"`
	IPC       float64 `json:"ipc"`

	AvgPower      float64 `json:"avgPower"`
	BaselinePower float64 `json:"baselinePower"`
	Saving        float64 `json:"saving"`
	PowerDelay    float64 `json:"powerDelay"`

	IntUnitUtil  float64 `json:"intUnitUtil"`
	FPUnitUtil   float64 `json:"fpUnitUtil"`
	LatchUtil    float64 `json:"latchUtil"`
	DPortUtil    float64 `json:"dportUtil"`
	BusUtil      float64 `json:"busUtil"`
	BranchAcc    float64 `json:"branchAccuracy"`
	DL1MissRate  float64 `json:"dl1MissRate"`
	L2MissRate   float64 `json:"l2MissRate"`
	GateViolates uint64  `json:"gateViolations"`
}

// FromResult flattens a run result.
func FromResult(r *core.Result) RunRecord {
	return RunRecord{
		Benchmark:     r.Benchmark,
		Scheme:        r.Scheme,
		Depth:         r.Machine.Pipeline.Depth,
		Insts:         r.Committed,
		Cycles:        r.Cycles,
		IPC:           r.IPC,
		AvgPower:      r.AvgPower,
		BaselinePower: r.BaselinePower,
		Saving:        r.Saving,
		PowerDelay:    r.PowerDelay(),
		IntUnitUtil:   r.Util.IntUnits,
		FPUnitUtil:    r.Util.FPUnits,
		LatchUtil:     r.Util.Latches,
		DPortUtil:     r.Util.DPorts,
		BusUtil:       r.Util.ResultBus,
		BranchAcc:     r.BranchAccuracy,
		DL1MissRate:   r.DL1MissRate,
		L2MissRate:    r.L2MissRate,
		GateViolates:  r.GateViolations,
	}
}

// WriteJSON emits records as an indented JSON array.
func WriteJSON(w io.Writer, records []RunRecord) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(records)
}

// ReadJSON parses records written by WriteJSON.
func ReadJSON(r io.Reader) ([]RunRecord, error) {
	var out []RunRecord
	if err := json.NewDecoder(r).Decode(&out); err != nil {
		return nil, fmt.Errorf("report: %w", err)
	}
	return out, nil
}

// runHeader is the CSV column order for RunRecord.
var runHeader = []string{
	"benchmark", "scheme", "depth", "instructions", "cycles", "ipc",
	"avgPower", "baselinePower", "saving", "powerDelay",
	"intUnitUtil", "fpUnitUtil", "latchUtil", "dportUtil", "busUtil",
	"branchAccuracy", "dl1MissRate", "l2MissRate", "gateViolations",
}

// WriteCSV emits records as CSV with a header row.
func WriteCSV(w io.Writer, records []RunRecord) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(runHeader); err != nil {
		return err
	}
	f := func(v float64) string { return strconv.FormatFloat(v, 'g', 10, 64) }
	u := func(v uint64) string { return strconv.FormatUint(v, 10) }
	for _, r := range records {
		row := []string{
			r.Benchmark, r.Scheme, strconv.Itoa(r.Depth), u(r.Insts), u(r.Cycles), f(r.IPC),
			f(r.AvgPower), f(r.BaselinePower), f(r.Saving), f(r.PowerDelay),
			f(r.IntUnitUtil), f(r.FPUnitUtil), f(r.LatchUtil), f(r.DPortUtil), f(r.BusUtil),
			f(r.BranchAcc), f(r.DL1MissRate), f(r.L2MissRate), u(r.GateViolates),
		}
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// ComparisonCSV emits a per-figure comparison (one row per benchmark, one
// column per scheme series) in the paper's plot layout.
func ComparisonCSV(w io.Writer, c *experiments.Comparison) error {
	cw := csv.NewWriter(w)
	header := []string{"benchmark"}
	for _, s := range c.Series {
		header = append(header, s.Scheme)
	}
	if err := cw.Write(header); err != nil {
		return err
	}
	for _, b := range c.Benches {
		row := []string{b}
		for _, s := range c.Series {
			row = append(row, strconv.FormatFloat(s.Values[b], 'g', 10, 64))
		}
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// ComparisonJSON emits a comparison as JSON (benchmarks in a stable order).
func ComparisonJSON(w io.Writer, c *experiments.Comparison) error {
	type series struct {
		Scheme  string             `json:"scheme"`
		Values  map[string]float64 `json:"values"`
		IntMean float64            `json:"intMean"`
		FPMean  float64            `json:"fpMean"`
	}
	out := struct {
		ID      string   `json:"id"`
		Metric  string   `json:"metric"`
		Benches []string `json:"benchmarks"`
		Series  []series `json:"series"`
		Paper   string   `json:"paperNote"`
	}{ID: c.ID, Metric: c.Metric, Benches: append([]string(nil), c.Benches...), Paper: c.PaperNote}
	sort.Strings(out.Benches)
	for _, s := range c.Series {
		out.Series = append(out.Series, series{
			Scheme: s.Scheme, Values: s.Values, IntMean: s.IntMean, FPMean: s.FPMean,
		})
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}
