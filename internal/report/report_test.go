package report

import (
	"bytes"
	"strings"
	"testing"

	"dcg/internal/core"
	"dcg/internal/experiments"
)

func sampleResult(t *testing.T) *core.Result {
	t.Helper()
	sim := core.NewSimulator(core.DefaultMachine())
	sim.Warmup = 10_000
	res, err := sim.RunBenchmark("gzip", core.SchemeDCG, 20_000)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestJSONRoundTrip(t *testing.T) {
	rec := FromResult(sampleResult(t))
	var buf bytes.Buffer
	if err := WriteJSON(&buf, []RunRecord{rec}); err != nil {
		t.Fatal(err)
	}
	got, err := ReadJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0] != rec {
		t.Fatalf("round trip mismatch:\n got %+v\nwant %+v", got, rec)
	}
}

func TestCSVShape(t *testing.T) {
	rec := FromResult(sampleResult(t))
	var buf bytes.Buffer
	if err := WriteCSV(&buf, []RunRecord{rec, rec}); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 3 {
		t.Fatalf("csv lines = %d, want 3", len(lines))
	}
	if !strings.HasPrefix(lines[0], "benchmark,scheme,") {
		t.Errorf("header = %q", lines[0])
	}
	if !strings.HasPrefix(lines[1], "gzip,dcg,8,") {
		t.Errorf("row = %q", lines[1])
	}
	cols := strings.Split(lines[0], ",")
	row := strings.Split(lines[1], ",")
	if len(cols) != len(row) {
		t.Errorf("header %d columns, row %d", len(cols), len(row))
	}
}

func TestComparisonExports(t *testing.T) {
	r := experiments.NewRunner(experiments.Options{
		Insts: 15_000, Warmup: 15_000, Benchmarks: []string{"gzip", "swim"},
	})
	c, err := r.Fig10()
	if err != nil {
		t.Fatal(err)
	}
	var csvBuf bytes.Buffer
	if err := ComparisonCSV(&csvBuf, c); err != nil {
		t.Fatal(err)
	}
	out := csvBuf.String()
	for _, want := range []string{"benchmark,dcg,plb-orig,plb-ext", "gzip,", "swim,"} {
		if !strings.Contains(out, want) {
			t.Errorf("csv missing %q:\n%s", want, out)
		}
	}
	var jsonBuf bytes.Buffer
	if err := ComparisonJSON(&jsonBuf, c); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{`"id": "Figure 10"`, `"scheme": "dcg"`, `"paperNote"`} {
		if !strings.Contains(jsonBuf.String(), want) {
			t.Errorf("json missing %q", want)
		}
	}
}

func TestRecordCarriesSoundness(t *testing.T) {
	rec := FromResult(sampleResult(t))
	if rec.GateViolates != 0 {
		t.Errorf("DCG run recorded %d violations", rec.GateViolates)
	}
	if rec.Saving <= 0 || rec.IPC <= 0 {
		t.Errorf("record fields empty: %+v", rec)
	}
}
