// Package kernels is a small library of real programs written in the
// simulator's assembly language. They exercise the assembler, the
// functional emulator, and the cycle-level pipeline on genuine control
// and data flow (loops, calls, recurrences, pointer walks, FP stencils),
// complementing the synthetic SPEC2000-like profiles.
//
// Each kernel carries a self-check: Expected lists architectural register
// values after a functional run, so both the emulator and any pipeline
// front-end integration can be validated against ground truth.
package kernels

import (
	"fmt"
	"sort"

	"dcg/internal/emu"
)

// Kernel is one program plus its architectural ground truth.
type Kernel struct {
	Name   string
	Desc   string
	Source string

	// Setup prepares machine state (arrays in memory, input registers).
	Setup func(m *emu.Machine)

	// Expected maps integer register numbers to required final values.
	Expected map[int]int64

	// Check optionally validates memory state after the run.
	Check func(m *emu.Machine) error
}

// Machine builds a ready-to-run machine for the kernel.
func (k *Kernel) Machine() *emu.Machine {
	m := emu.MustAssemble(k.Name, k.Source)
	m.MaxInsts = 50_000_000
	if k.Setup != nil {
		k.Setup(m)
	}
	return m
}

// Verify runs the kernel functionally and checks its ground truth,
// returning the dynamic instruction count.
func (k *Kernel) Verify() (uint64, error) {
	m := k.Machine()
	n, err := m.Run()
	if err != nil {
		return n, fmt.Errorf("kernels: %s: %w", k.Name, err)
	}
	for reg, want := range k.Expected {
		if got := m.IntRegs[reg]; got != want {
			return n, fmt.Errorf("kernels: %s: r%d = %d, want %d", k.Name, reg, got, want)
		}
	}
	if k.Check != nil {
		if err := k.Check(m); err != nil {
			return n, fmt.Errorf("kernels: %s: %w", k.Name, err)
		}
	}
	return n, nil
}

// All returns the kernel library, sorted by name.
func All() []*Kernel {
	ks := []*Kernel{sumKernel(), fibKernel(), sieveKernel(), bubbleSortKernel(),
		chaseKernel(), dotKernel(), stencilKernel(), gcdKernel(),
		matmulKernel(), hashKernel()}
	sort.Slice(ks, func(i, j int) bool { return ks[i].Name < ks[j].Name })
	return ks
}

// ByName returns one kernel.
func ByName(name string) (*Kernel, bool) {
	for _, k := range All() {
		if k.Name == name {
			return k, true
		}
	}
	return nil, false
}

// sumKernel: arithmetic series, the canonical counted loop.
func sumKernel() *Kernel {
	return &Kernel{
		Name: "sum",
		Desc: "sum of 1..1000 in a counted loop",
		Source: `
    addi r1, r0, 1000
    addi r2, r0, 0
loop:
    add  r2, r2, r1
    subi r1, r1, 1
    bne  r1, r0, loop
    halt
`,
		Expected: map[int]int64{2: 500500},
	}
}

// fibKernel: a loop-carried recurrence (serial dependence chain).
func fibKernel() *Kernel {
	return &Kernel{
		Name: "fib",
		Desc: "iterative fibonacci: a tight loop-carried recurrence",
		Source: `
    addi r1, r0, 0
    addi r2, r0, 1
    addi r3, r0, 40
loop:
    add  r4, r1, r2
    mov  r1, r2
    mov  r2, r4
    subi r3, r3, 1
    bne  r3, r0, loop
    halt
`,
		Expected: map[int]int64{2: 165580141}, // fib(41)
	}
}

// sieveKernel: the sieve of Eratosthenes over memory with nested loops
// and data-dependent branches.
func sieveKernel() *Kernel {
	const limit = 500
	// Reference prime count.
	count := int64(0)
	sieve := make([]bool, limit)
	for i := 2; i < limit; i++ {
		if !sieve[i] {
			count++
			for j := i * i; j < limit; j += i {
				sieve[j] = true
			}
		}
	}
	return &Kernel{
		Name: "sieve",
		Desc: "sieve of Eratosthenes: nested loops, stores, data-dependent branches",
		Source: `
    lui  r10, 1         ; flags base = 0x10000 (8 bytes per flag)
    addi r11, r0, 500   ; limit
    addi r1, r0, 2      ; i
    addi r9, r0, 0      ; prime count
outer:
    bge  r1, r11, done
    shl  r2, r1, r12    ; r12 = 3 -> byte offset = i*8
    add  r2, r2, r10
    ld   r3, r2, 0      ; flags[i]
    bne  r3, r0, next
    addi r9, r9, 1      ; i is prime
    mul  r4, r1, r1     ; j = i*i
inner:
    bge  r4, r11, next
    shl  r5, r4, r12
    add  r5, r5, r10
    addi r6, r0, 1
    st   r6, r5, 0      ; flags[j] = 1
    add  r4, r4, r1
    jmp  inner
next:
    addi r1, r1, 1
    jmp  outer
done:
    halt
`,
		Setup: func(m *emu.Machine) {
			m.IntRegs[12] = 3 // shift for 8-byte flags
		},
		Expected: map[int]int64{9: count},
	}
}

// bubbleSortKernel: quadratic sort over an array in memory.
func bubbleSortKernel() *Kernel {
	const n = 48
	vals := make([]int64, n)
	// A fixed pseudo-random permutation (deterministic, no rand import).
	x := int64(12345)
	for i := range vals {
		x = (x*1103515245 + 12345) % 100000
		vals[i] = x
	}
	return &Kernel{
		Name: "bsort",
		Desc: "bubble sort: nested loops, swaps, heavily data-dependent branches",
		Source: `
    ; r10 = base, r11 = n
    subi r1, r11, 1     ; passes = n-1
outer:
    beq  r1, r0, done
    addi r2, r0, 0      ; j = 0
    mov  r7, r10        ; ptr = base
inner:
    bge  r2, r1, endpass
    ld   r3, r7, 0
    ld   r4, r7, 8
    blt  r3, r4, noswap
    st   r4, r7, 0
    st   r3, r7, 8
noswap:
    addi r7, r7, 8
    addi r2, r2, 1
    jmp  inner
endpass:
    subi r1, r1, 1
    jmp  outer
done:
    halt
`,
		Setup: func(m *emu.Machine) {
			m.IntRegs[10] = 0x2_0000
			m.IntRegs[11] = n
			for i, v := range vals {
				m.WriteMem(0x2_0000+uint64(i)*8, v)
			}
		},
		Check: func(m *emu.Machine) error {
			prev := m.ReadMem(0x2_0000)
			for i := 1; i < n; i++ {
				cur := m.ReadMem(0x2_0000 + uint64(i)*8)
				if cur < prev {
					return fmt.Errorf("not sorted at %d: %d < %d", i, cur, prev)
				}
				prev = cur
			}
			return nil
		},
	}
}

// chaseKernel: a linked-list walk — the mcf-style serial load chain.
func chaseKernel() *Kernel {
	const nodes = 256
	return &Kernel{
		Name: "chase",
		Desc: "linked-list pointer chase: serial dependent loads (mcf-style)",
		Source: `
    ; r10 = head pointer, r11 = steps
    addi r9, r0, 0
loop:
    ld   r10, r10, 0    ; p = *p
    addi r9, r9, 1
    subi r11, r11, 1
    bne  r11, r0, loop
    halt
`,
		Setup: func(m *emu.Machine) {
			// Build a shuffled singly linked ring of 256 nodes.
			base := uint64(0x3_0000)
			perm := make([]int, nodes)
			for i := range perm {
				perm[i] = i
			}
			x := 99991
			for i := nodes - 1; i > 0; i-- {
				x = (x*48271 + 11) % 2147483647
				j := x % (i + 1)
				perm[i], perm[j] = perm[j], perm[i]
			}
			for i := 0; i < nodes; i++ {
				from := base + uint64(perm[i])*16
				to := base + uint64(perm[(i+1)%nodes])*16
				m.WriteMem(from, int64(to))
			}
			m.IntRegs[10] = int64(base + uint64(perm[0])*16)
			m.IntRegs[11] = 4096
		},
		Expected: map[int]int64{9: 4096},
	}
}

// dotKernel: FP dot product.
func dotKernel() *Kernel {
	const n = 128
	want := int64(0)
	{
		sum := 0.0
		for i := 0; i < n; i++ {
			a := float64(i) * 0.5
			b := float64(n - i)
			sum += a * b
		}
		want = int64(sum)
	}
	return &Kernel{
		Name: "dot",
		Desc: "FP dot product: streaming loads feeding multiply-accumulate",
		Source: `
    ; r10 = a base, r11 = b base, r12 = n
    cvtif f1, r0        ; sum = 0
loop:
    ldf  f2, r10, 0
    ldf  f3, r11, 0
    fmul f4, f2, f3
    fadd f1, f1, f4
    addi r10, r10, 8
    addi r11, r11, 8
    subi r12, r12, 1
    bne  r12, r0, loop
    cvtfi r9, f1
    halt
`,
		Setup: func(m *emu.Machine) {
			a, b := uint64(0x4_0000), uint64(0x5_0000)
			for i := 0; i < n; i++ {
				m.WriteMemF(a+uint64(i)*8, float64(i)*0.5)
				m.WriteMemF(b+uint64(i)*8, float64(n-i))
			}
			m.IntRegs[10] = int64(a)
			m.IntRegs[11] = int64(b)
			m.IntRegs[12] = n
		},
		Expected: map[int]int64{9: want},
	}
}

// stencilKernel: a 1-D three-point FP stencil (swim/mgrid-style).
func stencilKernel() *Kernel {
	const n = 96
	src := make([]float64, n)
	for i := range src {
		src[i] = float64(i%7) + 0.25
	}
	want := make([]float64, n)
	for i := 1; i < n-1; i++ {
		want[i] = (src[i-1] + src[i] + src[i+1]) / 4
	}
	return &Kernel{
		Name: "stencil",
		Desc: "1-D three-point FP stencil sweep (swim/mgrid-style)",
		Source: `
    ; r10 = src, r11 = dst, r12 = n-2 interior points
    cvtif f9, r13       ; f9 = 4.0 (r13 preset)
loop:
    ldf  f1, r10, 0
    ldf  f2, r10, 8
    ldf  f3, r10, 16
    fadd f4, f1, f2
    fadd f4, f4, f3
    fdiv f5, f4, f9
    stf  f5, r11, 8
    addi r10, r10, 8
    addi r11, r11, 8
    subi r12, r12, 1
    bne  r12, r0, loop
    halt
`,
		Setup: func(m *emu.Machine) {
			a, b := uint64(0x6_0000), uint64(0x7_0000)
			for i := 0; i < n; i++ {
				m.WriteMemF(a+uint64(i)*8, src[i])
			}
			m.IntRegs[10] = int64(a)
			m.IntRegs[11] = int64(b)
			m.IntRegs[12] = n - 2
			m.IntRegs[13] = 4
		},
		Check: func(m *emu.Machine) error {
			b := uint64(0x7_0000)
			for i := 1; i < n-1; i++ {
				got := m.ReadMemF(b + uint64(i)*8)
				if diff := got - want[i]; diff > 1e-12 || diff < -1e-12 {
					return fmt.Errorf("dst[%d] = %v, want %v", i, got, want[i])
				}
			}
			return nil
		},
	}
}

// gcdKernel: Euclid's algorithm via a recursive-style call chain.
func gcdKernel() *Kernel {
	return &Kernel{
		Name: "gcd",
		Desc: "Euclid's gcd with function calls and the remainder unit",
		Source: `
    addi r1, r0, 1071
    addi r2, r0, 462
gcd:
    beq  r2, r0, done
    rem  r3, r1, r2
    mov  r1, r2
    mov  r2, r3
    jmp  gcd
done:
    mov  r9, r1
    halt
`,
		Expected: map[int]int64{9: 21},
	}
}

// matmulKernel: a small dense FP matrix multiply (classic three-deep nest).
func matmulKernel() *Kernel {
	const n = 12
	a := make([]float64, n*n)
	b := make([]float64, n*n)
	for i := range a {
		a[i] = float64(i%9) * 0.5
		b[i] = float64((i*7)%11) - 3
	}
	want := make([]float64, n*n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			sum := 0.0
			for k := 0; k < n; k++ {
				sum += a[i*n+k] * b[k*n+j]
			}
			want[i*n+j] = sum
		}
	}
	return &Kernel{
		Name: "matmul",
		Desc: "dense FP matrix multiply: a three-deep loop nest of multiply-accumulates",
		Source: `
    ; r10=a r11=b r12=c r13=n r14=8 (element size) r15=n*8 (row stride)
    addi r1, r0, 0        ; i
iloop:
    bge  r1, r13, done
    addi r2, r0, 0        ; j
jloop:
    bge  r2, r13, inext
    cvtif f1, r0          ; sum = 0
    addi r3, r0, 0        ; k
    mul  r4, r1, r15      ; &a[i*n]
    add  r4, r4, r10
    mul  r5, r2, r14      ; &b[0*n+j]
    add  r5, r5, r11
kloop:
    bge  r3, r13, kdone
    ldf  f2, r4, 0
    ldf  f3, r5, 0
    fmul f4, f2, f3
    fadd f1, f1, f4
    add  r4, r4, r14      ; a walks a row
    add  r5, r5, r15      ; b walks a column
    addi r3, r3, 1
    jmp  kloop
kdone:
    mul  r6, r1, r15      ; &c[i*n+j]
    mul  r7, r2, r14
    add  r6, r6, r7
    add  r6, r6, r12
    stf  f1, r6, 0
    addi r2, r2, 1
    jmp  jloop
inext:
    addi r1, r1, 1
    jmp  iloop
done:
    halt
`,
		Setup: func(m *emu.Machine) {
			ab, bb, cb := uint64(0x8_0000), uint64(0x9_0000), uint64(0xA_0000)
			for i := 0; i < n*n; i++ {
				m.WriteMemF(ab+uint64(i)*8, a[i])
				m.WriteMemF(bb+uint64(i)*8, b[i])
			}
			m.IntRegs[10] = int64(ab)
			m.IntRegs[11] = int64(bb)
			m.IntRegs[12] = int64(cb)
			m.IntRegs[13] = n
			m.IntRegs[14] = 8
			m.IntRegs[15] = n * 8
		},
		Check: func(m *emu.Machine) error {
			cb := uint64(0xA_0000)
			for i := 0; i < n*n; i++ {
				got := m.ReadMemF(cb + uint64(i)*8)
				if diff := got - want[i]; diff > 1e-9 || diff < -1e-9 {
					return fmt.Errorf("c[%d] = %v, want %v", i, got, want[i])
				}
			}
			return nil
		},
	}
}

// hashKernel: open-addressing hash probes (vortex-ish: data-dependent
// loads and compare-branch chains).
func hashKernel() *Kernel {
	const buckets = 512 // power of two
	const keys = 200
	// Reference: insert keys with linear probing, then count total probes
	// to find them all again.
	table := make([]int64, buckets)
	insert := func(k int64) {
		h := int(uint64(k*2654435761) % buckets)
		for table[h] != 0 {
			h = (h + 1) % buckets
		}
		table[h] = k
	}
	probesFor := func(k int64) int64 {
		h := int(uint64(k*2654435761) % buckets)
		p := int64(1)
		for table[h] != k {
			h = (h + 1) % buckets
			p++
		}
		return p
	}
	var totalProbes int64
	for i := 1; i <= keys; i++ {
		insert(int64(i*7 + 3))
	}
	for i := 1; i <= keys; i++ {
		totalProbes += probesFor(int64(i*7 + 3))
	}
	return &Kernel{
		Name: "hash",
		Desc: "open-addressing hash probes: data-dependent loads and branches (vortex-ish)",
		Source: `
    ; r10=table r11=#keys r12=hash multiplier r13=bucket mask (power of 2 - 1)
    addi r1, r0, 1        ; key index i
    addi r9, r0, 0        ; total probes
keyloop:
    ; key = i*7+3
    addi r2, r0, 7
    mul  r2, r1, r2
    addi r2, r2, 3
    ; h = (key * mult) & mask
    mul  r3, r2, r12
    and  r3, r3, r13
probe:
    addi r9, r9, 1
    shl  r4, r3, r14      ; r14 = 3 (8-byte slots)
    add  r4, r4, r10
    ld   r5, r4, 0
    beq  r5, r2, found
    addi r3, r3, 1
    and  r3, r3, r13
    jmp  probe
found:
    addi r1, r1, 1
    bge  r11, r1, keyloop ; while i <= #keys
    halt
`,
		Setup: func(m *emu.Machine) {
			base := uint64(0xB_0000)
			for i, v := range table {
				m.WriteMem(base+uint64(i)*8, v)
			}
			m.IntRegs[10] = int64(base)
			m.IntRegs[11] = keys
			m.IntRegs[12] = 2654435761
			m.IntRegs[13] = buckets - 1
			m.IntRegs[14] = 3
		},
		Expected: map[int]int64{9: totalProbes},
	}
}
