package kernels

import (
	"testing"

	"dcg/internal/config"
	"dcg/internal/core"
	"dcg/internal/cpu"
)

func TestAllKernelsVerify(t *testing.T) {
	for _, k := range All() {
		n, err := k.Verify()
		if err != nil {
			t.Errorf("%v", err)
			continue
		}
		if n == 0 {
			t.Errorf("%s: executed nothing", k.Name)
		}
		t.Logf("%-8s %7d insts  (%s)", k.Name, n, k.Desc)
	}
}

func TestByName(t *testing.T) {
	if _, ok := ByName("sieve"); !ok {
		t.Fatal("sieve missing")
	}
	if _, ok := ByName("nope"); ok {
		t.Fatal("phantom kernel")
	}
}

// TestKernelsOnPipeline runs every kernel through the cycle-level core
// and cross-checks: the pipeline must commit exactly the functionally
// executed instruction count, and IPC must be physical.
func TestKernelsOnPipeline(t *testing.T) {
	for _, k := range All() {
		funcCount, err := k.Verify()
		if err != nil {
			t.Fatal(err)
		}
		c, err := cpu.New(config.Default(), k.Machine())
		if err != nil {
			t.Fatal(err)
		}
		if _, err := c.Run(200_000_000); err != nil {
			t.Fatalf("%s: %v", k.Name, err)
		}
		st := c.Stats()
		if st.Committed != funcCount {
			t.Errorf("%s: pipeline committed %d, emulator executed %d",
				k.Name, st.Committed, funcCount)
		}
		if ipc := st.IPC(); ipc <= 0 || ipc > float64(config.Default().IssueWidth) {
			t.Errorf("%s: IPC %.2f out of physical range", k.Name, ipc)
		}
	}
}

// TestChaseIsSerial checks the pointer-chase kernel behaves like mcf: its
// IPC must be far below the sort kernel's (serial loads vs parallel work).
func TestChaseIsSerial(t *testing.T) {
	ipc := func(name string) float64 {
		k, _ := ByName(name)
		c, err := cpu.New(config.Default(), k.Machine())
		if err != nil {
			t.Fatal(err)
		}
		if _, err := c.Run(200_000_000); err != nil {
			t.Fatal(err)
		}
		return c.Stats().IPC()
	}
	chase, sum := ipc("chase"), ipc("sum")
	if chase >= sum {
		t.Errorf("pointer chase IPC %.2f not below counted loop %.2f", chase, sum)
	}
}

// TestKernelDCGZeroLoss runs a kernel under DCG through the public API and
// confirms the no-performance-loss guarantee holds for real programs too.
func TestKernelDCGZeroLoss(t *testing.T) {
	sim := core.NewSimulator(core.DefaultMachine())
	k, _ := ByName("bsort")
	base, err := sim.RunSource(k.Machine(), core.SchemeNone)
	if err != nil {
		t.Fatal(err)
	}
	dcg, err := sim.RunSource(k.Machine(), core.SchemeDCG)
	if err != nil {
		t.Fatal(err)
	}
	if base.Cycles != dcg.Cycles {
		t.Errorf("DCG changed kernel timing: %d vs %d cycles", dcg.Cycles, base.Cycles)
	}
	if dcg.Saving <= 0.1 {
		t.Errorf("DCG saving %.3f implausibly low on a real kernel", dcg.Saving)
	}
}
