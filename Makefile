# Standard checks for the godcg repository.
#
#   make check   - what CI runs: lint + full test suite under the race
#                  detector (includes the server/simrun concurrency tests)
#   make lint    - go vet + gofmt -l (fails on unformatted files) +
#                  schemedoc -check (docs scheme tables match the registry)
#   make test    - fast suite, no race detector
#   make bench   - the per-figure and substrate micro-benchmarks
#   make bench-json - the same benchmarks as machine-readable JSON
#                  (BENCH_baseline.json holds a committed -benchtime=1x run)
#   make serve   - run the simulation service locally
#   make sweep-smoke - kill a sweep job mid-flight, resume it, and assert
#                  byte-identical results with no re-executed work
#   make cluster-smoke - coordinator + two worker processes, SIGKILL one
#                  mid-sweep, assert completion and byte-identical results

GO ?= go

.PHONY: check lint vet fmt-check schemedoc-check test race bench bench-json build serve sweep-smoke cluster-smoke

check: lint race

lint: vet fmt-check schemedoc-check

schemedoc-check:
	$(GO) run ./cmd/schemedoc -check

fmt-check:
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Pinned to -cpu=1 so benchmark names stay suffix-free (comparable
# against BENCH_baseline.json) and the default replay path resolves to
# the serial kernel; the parallel engine's worker counts are explicit
# workers=N sub-benchmarks. For real parallel scaling numbers run
# `go test -bench='Parallel$' -benchmem .` without -cpu on a multi-core
# machine.
bench:
	$(GO) test -bench=. -benchmem -run=^$$ -cpu=1 ./...

bench-json:
	$(GO) test -bench=. -benchmem -run=^$$ -cpu=1 ./... | $(GO) run ./cmd/benchjson

serve:
	$(GO) run ./cmd/dcgserve

sweep-smoke:
	scripts/sweep_smoke.sh

cluster-smoke:
	scripts/cluster_smoke.sh
