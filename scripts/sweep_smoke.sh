#!/usr/bin/env bash
# Sweep kill-and-resume smoke test.
#
# Runs a small sweep to completion (the reference), then runs the same
# spec again, SIGKILLs it mid-flight, resumes it, and asserts:
#
#   1. the resume skipped every item the killed run had checkpointed
#      (no completed work is re-executed), and
#   2. the resumed job's results.jsonl is byte-identical to the
#      uninterrupted reference run's.
#
# Usage: scripts/sweep_smoke.sh [workdir]
# The workdir (default: a fresh temp dir) keeps the job directories and
# manifests for post-mortem; CI uploads it as an artifact.
set -euo pipefail

cd "$(dirname "$0")/.."

work="${1:-$(mktemp -d)}"
mkdir -p "$work"
echo "sweep-smoke: working in $work"

go build -o "$work/dcgsweep" ./cmd/dcgsweep

spec="$work/spec.json"
cat > "$spec" <<'EOF'
{
  "name": "smoke",
  "benchmarks": ["gzip", "mcf", "art", "gcc"],
  "schemes": ["none", "dcg", "oracle", "plb-ext"],
  "max_insts": 50000
}
EOF

fail() { echo "sweep-smoke: FAIL: $*" >&2; exit 1; }

# Reference: one uninterrupted run.
"$work/dcgsweep" run -spec "$spec" -dir "$work/ref" -workers 2 > "$work/ref-summary.json"
[ -f "$work/ref/results.jsonl" ] || fail "reference run produced no results.jsonl"

# Victim: same spec, killed as soon as the manifest holds some (but not
# all) completed items.
total=$(grep -c '"type":"item"' "$work/ref/manifest.jsonl")
"$work/dcgsweep" run -spec "$spec" -dir "$work/job" -workers 2 > "$work/job-summary.json" 2>&1 &
pid=$!
for _ in $(seq 1 600); do
    done_items=$(grep -c '"status":"ok"' "$work/job/manifest.jsonl" 2>/dev/null || true)
    [ "${done_items:-0}" -ge 1 ] && break
    kill -0 "$pid" 2>/dev/null || break
    sleep 0.05
done
kill -9 "$pid" 2>/dev/null || true
wait "$pid" 2>/dev/null || true

[ -f "$work/job/manifest.jsonl" ] || fail "killed run left no manifest"
checkpointed=$(grep -c '"status":"ok"' "$work/job/manifest.jsonl" || true)
echo "sweep-smoke: killed mid-flight with $checkpointed/$total items checkpointed"
[ -f "$work/job/results.jsonl" ] && [ "$checkpointed" -lt "$total" ] && \
    fail "results.jsonl exists before the job completed"

# Resume and verify nothing checkpointed was re-executed. The resume is
# span-traced; its exported JSONL is a CI artifact.
"$work/dcgsweep" resume -dir "$work/job" -workers 2 \
    -trace-out "$work/resume-spans.jsonl" > "$work/resume-summary.json"
skipped=$(sed -n 's/.*"skipped": \([0-9]*\).*/\1/p' "$work/resume-summary.json")
grep -q '"done": true' "$work/resume-summary.json" || fail "resume did not finish the job"
[ "$skipped" -eq "$checkpointed" ] || \
    fail "resume skipped $skipped items but the kill checkpointed $checkpointed"

# Determinism: the interrupted-and-resumed stream must be byte-identical
# to the uninterrupted reference.
cmp "$work/ref/results.jsonl" "$work/job/results.jsonl" || \
    fail "resumed results.jsonl differs from the uninterrupted run"

# The traced resume exported a span tree: one sweep.job root plus one
# sweep.item per executed (non-skipped) item.
[ -s "$work/resume-spans.jsonl" ] || fail "traced resume exported no spans"
grep -q '"name":"sweep.job"' "$work/resume-spans.jsonl" || \
    fail "span export has no sweep.job root"
grep -q '"name":"sweep.item"' "$work/resume-spans.jsonl" || \
    fail "span export has no sweep.item spans"

# Server mode: the same sweep submitted over HTTP must be traced end to
# end — the job view carries a trace_id and /v1/traces returns its
# connected span tree.
go build -o "$work/dcgserve" ./cmd/dcgserve
port=$((20000 + RANDOM % 20000))
"$work/dcgserve" -addr "127.0.0.1:$port" -sweep-dir "$work/srv-jobs" \
    -log-level warn > "$work/dcgserve.log" 2>&1 &
srv_pid=$!
trap 'kill "$srv_pid" 2>/dev/null || true' EXIT
for _ in $(seq 1 100); do
    curl -fsS "http://127.0.0.1:$port/healthz" > /dev/null 2>&1 && break
    kill -0 "$srv_pid" 2>/dev/null || fail "dcgserve died on startup (see dcgserve.log)"
    sleep 0.1
done

curl -fsS -X POST --data-binary "@$spec" \
    "http://127.0.0.1:$port/v1/sweeps" > "$work/srv-submit.json" || \
    fail "sweep submit over HTTP failed"
job_id=$(sed -n 's/.*"id": *"\([^"]*\)".*/\1/p' "$work/srv-submit.json" | head -1)
[ -n "$job_id" ] || fail "submit response has no job id"

state=""
for _ in $(seq 1 600); do
    curl -fsS "http://127.0.0.1:$port/v1/sweeps/$job_id" > "$work/srv-status.json"
    state=$(sed -n 's/.*"state": *"\([^"]*\)".*/\1/p' "$work/srv-status.json" | head -1)
    [ "$state" != "running" ] && break
    sleep 0.1
done
[ "$state" = "done" ] || fail "server sweep finished in state '$state'"

trace_id=$(sed -n 's/.*"trace_id": *"\([^"]*\)".*/\1/p' "$work/srv-status.json" | head -1)
[ -n "$trace_id" ] || fail "server job view has no trace_id"

curl -fsS "http://127.0.0.1:$port/v1/traces?trace_id=$trace_id&format=jsonl" \
    > "$work/server-spans.jsonl" || fail "/v1/traces fetch failed"
[ -s "$work/server-spans.jsonl" ] || fail "/v1/traces returned no spans for $trace_id"
grep -q '"name":"sweep.job"' "$work/server-spans.jsonl" || \
    fail "server trace has no sweep.job root"
items=$(grep -c '"name":"sweep.item"' "$work/server-spans.jsonl" || true)
[ "$items" -eq "$total" ] || \
    fail "server trace has $items sweep.item spans, want $total"

kill "$srv_pid" 2>/dev/null || true
wait "$srv_pid" 2>/dev/null || true
trap - EXIT

echo "sweep-smoke: OK ($total items; kill after $checkpointed; byte-identical results; $items item spans traced)"
