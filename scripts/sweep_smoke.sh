#!/usr/bin/env bash
# Sweep kill-and-resume smoke test.
#
# Runs a small sweep to completion (the reference), then runs the same
# spec again, SIGKILLs it mid-flight, resumes it, and asserts:
#
#   1. the resume skipped every item the killed run had checkpointed
#      (no completed work is re-executed), and
#   2. the resumed job's results.jsonl is byte-identical to the
#      uninterrupted reference run's.
#
# Usage: scripts/sweep_smoke.sh [workdir]
# The workdir (default: a fresh temp dir) keeps the job directories and
# manifests for post-mortem; CI uploads it as an artifact.
set -euo pipefail

cd "$(dirname "$0")/.."

work="${1:-$(mktemp -d)}"
mkdir -p "$work"
echo "sweep-smoke: working in $work"

go build -o "$work/dcgsweep" ./cmd/dcgsweep

spec="$work/spec.json"
cat > "$spec" <<'EOF'
{
  "name": "smoke",
  "benchmarks": ["gzip", "mcf", "art", "gcc"],
  "schemes": ["none", "dcg", "oracle", "plb-ext"],
  "max_insts": 50000
}
EOF

fail() { echo "sweep-smoke: FAIL: $*" >&2; exit 1; }

# Reference: one uninterrupted run.
"$work/dcgsweep" run -spec "$spec" -dir "$work/ref" -workers 2 > "$work/ref-summary.json"
[ -f "$work/ref/results.jsonl" ] || fail "reference run produced no results.jsonl"

# Victim: same spec, killed as soon as the manifest holds some (but not
# all) completed items.
total=$(grep -c '"type":"item"' "$work/ref/manifest.jsonl")
"$work/dcgsweep" run -spec "$spec" -dir "$work/job" -workers 2 > "$work/job-summary.json" 2>&1 &
pid=$!
for _ in $(seq 1 600); do
    done_items=$(grep -c '"status":"ok"' "$work/job/manifest.jsonl" 2>/dev/null || true)
    [ "${done_items:-0}" -ge 1 ] && break
    kill -0 "$pid" 2>/dev/null || break
    sleep 0.05
done
kill -9 "$pid" 2>/dev/null || true
wait "$pid" 2>/dev/null || true

[ -f "$work/job/manifest.jsonl" ] || fail "killed run left no manifest"
checkpointed=$(grep -c '"status":"ok"' "$work/job/manifest.jsonl" || true)
echo "sweep-smoke: killed mid-flight with $checkpointed/$total items checkpointed"
[ -f "$work/job/results.jsonl" ] && [ "$checkpointed" -lt "$total" ] && \
    fail "results.jsonl exists before the job completed"

# Resume and verify nothing checkpointed was re-executed.
"$work/dcgsweep" resume -dir "$work/job" -workers 2 > "$work/resume-summary.json"
skipped=$(sed -n 's/.*"skipped": \([0-9]*\).*/\1/p' "$work/resume-summary.json")
grep -q '"done": true' "$work/resume-summary.json" || fail "resume did not finish the job"
[ "$skipped" -eq "$checkpointed" ] || \
    fail "resume skipped $skipped items but the kill checkpointed $checkpointed"

# Determinism: the interrupted-and-resumed stream must be byte-identical
# to the uninterrupted reference.
cmp "$work/ref/results.jsonl" "$work/job/results.jsonl" || \
    fail "resumed results.jsonl differs from the uninterrupted run"

echo "sweep-smoke: OK ($total items; kill after $checkpointed; byte-identical results)"
