#!/usr/bin/env bash
# Distributed-sweep smoke test: coordinator + two worker processes, one
# SIGKILLed mid-sweep.
#
# Runs a reference sweep single-node with dcgsweep, then the same spec
# through a dcgserve coordinator (pure coordinator: no embedded workers)
# with two dcgworker processes attached, SIGKILLs one worker once items
# start completing, and asserts:
#
#   1. the fleet still finishes the job (the dead worker's leases expire
#      and requeue on the survivor),
#   2. the distributed results.jsonl is byte-identical to the
#      single-node reference, and
#   3. the progress endpoint exposed the per-worker breakdown while the
#      job ran.
#
# Usage: scripts/cluster_smoke.sh [workdir]
# The workdir (default: a fresh temp dir) keeps job directories, logs
# and manifests for post-mortem; CI uploads it as an artifact.
set -euo pipefail

cd "$(dirname "$0")/.."

work="${1:-$(mktemp -d)}"
mkdir -p "$work"
echo "cluster-smoke: working in $work"

go build -o "$work/dcgsweep" ./cmd/dcgsweep
go build -o "$work/dcgserve" ./cmd/dcgserve
go build -o "$work/dcgworker" ./cmd/dcgworker

spec="$work/spec.json"
cat > "$spec" <<'EOF'
{
  "name": "cluster-smoke",
  "benchmarks": ["gzip", "mcf", "art", "gcc"],
  "schemes": ["none", "dcg", "oracle", "plb-ext"],
  "max_insts": 50000
}
EOF

fail() { echo "cluster-smoke: FAIL: $*" >&2; exit 1; }

pids=()
cleanup() {
    for pid in "${pids[@]}"; do kill "$pid" 2>/dev/null || true; done
}
trap cleanup EXIT

# Reference: one uninterrupted single-node run.
"$work/dcgsweep" run -spec "$spec" -dir "$work/ref" -workers 2 > "$work/ref-summary.json"
[ -f "$work/ref/results.jsonl" ] || fail "reference run produced no results.jsonl"
total=$(grep -c '"type":"item"' "$work/ref/manifest.jsonl")

# Coordinator: cluster mode, no embedded workers, short lease TTL so the
# killed worker's items requeue quickly.
port=$((20000 + RANDOM % 20000))
"$work/dcgserve" -addr "127.0.0.1:$port" -cluster -cluster-workers 0 \
    -lease-ttl 2s -sweep-dir "$work/jobs" -store-dir "$work/origin-store" \
    -log-level warn > "$work/dcgserve.log" 2>&1 &
pids+=($!)
for _ in $(seq 1 100); do
    curl -fsS "http://127.0.0.1:$port/healthz" > /dev/null 2>&1 && break
    kill -0 "${pids[0]}" 2>/dev/null || fail "dcgserve died on startup (see dcgserve.log)"
    sleep 0.1
done

# Two worker processes, each with its own local store cache remote-tiered
# to the coordinator.
"$work/dcgworker" -join "http://127.0.0.1:$port" -name w1 -parallel 2 \
    -store-dir "$work/w1-store" -poll 50ms -log-level warn > "$work/w1.log" 2>&1 &
w1_pid=$!
pids+=($w1_pid)
"$work/dcgworker" -join "http://127.0.0.1:$port" -name w2 -parallel 2 \
    -store-dir "$work/w2-store" -poll 50ms -log-level warn > "$work/w2.log" 2>&1 &
pids+=($!)

curl -fsS -X POST --data-binary "@$spec" \
    "http://127.0.0.1:$port/v1/sweeps" > "$work/submit.json" || \
    fail "sweep submit failed"
job_id=$(sed -n 's/.*"id": *"\([^"]*\)".*/\1/p' "$work/submit.json" | head -1)
[ -n "$job_id" ] || fail "submit response has no job id"
job_dir="$work/jobs/$job_id"

# Wait for first completions, watching the per-worker breakdown, then
# SIGKILL w1 — no cleanup, no completion report; its leases must expire.
saw_breakdown=0
killed=0
state="running"
for _ in $(seq 1 1200); do
    curl -fsS "http://127.0.0.1:$port/v1/sweeps/$job_id/progress" \
        > "$work/progress.json" 2>/dev/null || true
    grep -q '"workers":' "$work/progress.json" && saw_breakdown=1
    state=$(sed -n 's/.*"state": *"\([^"]*\)".*/\1/p' "$work/progress.json" | head -1)
    [ "$state" != "running" ] && [ -n "$state" ] && break
    if [ "$killed" -eq 0 ]; then
        done_items=$(grep -c '"status":"ok"' "$job_dir/manifest.jsonl" 2>/dev/null || true)
        if [ "${done_items:-0}" -ge 2 ]; then
            kill -9 "$w1_pid" 2>/dev/null || true
            killed=1
            echo "cluster-smoke: SIGKILLed worker w1 with $done_items/$total items checkpointed"
        fi
    fi
    sleep 0.1
done
[ "$killed" -eq 1 ] || fail "never reached the kill point (job finished too fast or stalled)"
[ "$state" = "done" ] || fail "cluster sweep finished in state '$state' (see $work/*.log)"
[ "$saw_breakdown" -eq 1 ] || fail "progress endpoint never exposed the per-worker breakdown"

# Determinism: the surviving fleet's results must be byte-identical to
# the single-node reference.
curl -fsS "http://127.0.0.1:$port/v1/sweeps/$job_id/results" > "$work/cluster-results.jsonl" || \
    fail "results fetch failed"
cmp "$work/ref/results.jsonl" "$work/cluster-results.jsonl" || \
    fail "distributed results.jsonl differs from the single-node reference"
cmp "$work/ref/results.jsonl" "$job_dir/results.jsonl" || \
    fail "on-disk job results differ from the single-node reference"

# The fleet's metrics surface must show cluster activity.
curl -fsS "http://127.0.0.1:$port/metrics" > "$work/metrics.txt"
grep -q '^dcg_cluster_leases_granted_total [1-9]' "$work/metrics.txt" || \
    fail "no leases counted on /metrics"
expired=$(sed -n 's/^dcg_cluster_lease_expirations_total \([0-9]*\).*/\1/p' "$work/metrics.txt")
echo "cluster-smoke: $total items; lease expirations after kill: ${expired:-0}"

echo "cluster-smoke: OK ($total items; worker killed mid-sweep; byte-identical results)"
