// deep_pipeline reproduces the paper's section 5.6 study (Figure 17):
// DCG's savings grow on deeper pipelines because the gatable latch power
// grows with stage count while DCG's advance knowledge is unchanged.
//
//	go run ./examples/deep_pipeline
package main

import (
	"fmt"
	"log"

	"dcg/internal/core"
	"dcg/internal/power"
)

func main() {
	benches := []string{"gzip", "gcc", "mcf", "swim", "mesa", "lucas"}

	type row struct {
		bench           string
		save8, save20   float64
		latch8, latch20 float64
	}
	var rows []row

	for _, b := range benches {
		s8 := core.NewSimulator(core.DefaultMachine())
		r8, err := s8.RunBenchmark(b, core.SchemeDCG, 150_000)
		if err != nil {
			log.Fatal(err)
		}
		s20 := core.NewSimulator(core.DeepMachine())
		r20, err := s20.RunBenchmark(b, core.SchemeDCG, 150_000)
		if err != nil {
			log.Fatal(err)
		}
		rows = append(rows, row{
			bench: b,
			save8: r8.Saving, save20: r20.Saving,
			latch8:  r8.Model().Fraction(power.CompLatchBack),
			latch20: r20.Model().Fraction(power.CompLatchBack),
		})
	}

	fmt.Println("DCG total power savings: 8-stage vs 20-stage pipeline (Figure 17)")
	fmt.Printf("%-8s %10s %10s %16s %16s\n", "bench", "8-stage", "20-stage", "latch frac @8", "latch frac @20")
	var m8, m20 float64
	for _, r := range rows {
		fmt.Printf("%-8s %9.1f%% %9.1f%% %15.1f%% %15.1f%%\n",
			r.bench, 100*r.save8, 100*r.save20, 100*r.latch8, 100*r.latch20)
		m8 += r.save8
		m20 += r.save20
	}
	fmt.Printf("%-8s %9.1f%% %9.1f%%\n", "mean", 100*m8/float64(len(rows)), 100*m20/float64(len(rows)))
	fmt.Println("\npaper: 19.9% average at 8 stages vs 24.5% at 20 stages")
}
