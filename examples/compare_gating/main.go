// compare_gating reproduces the paper's headline comparison (Figures 10
// and 11) on the full 16-benchmark suite: DCG versus PLB-orig and PLB-ext,
// in power and in power-delay.
//
//	go run ./examples/compare_gating
//	go run ./examples/compare_gating -n 500000
package main

import (
	"flag"
	"fmt"
	"log"

	"dcg/internal/experiments"
)

func main() {
	n := flag.Uint64("n", 200_000, "instructions per benchmark")
	flag.Parse()

	r := experiments.NewRunner(experiments.Options{Insts: *n})

	fig10, err := r.Fig10()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(fig10.Table().String())
	fmt.Println("  " + fig10.PaperNote)
	fmt.Println()

	fig11, err := r.Fig11()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(fig11.Table().String())
	fmt.Println("  " + fig11.PaperNote)
	fmt.Println()

	perf, err := r.PerfLoss()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(perf.Table().String())
	fmt.Println("  " + perf.PaperNote)
}
