// Quickstart: run one benchmark under DCG and print the headline numbers.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"dcg/internal/core"
)

func main() {
	// The Table 1 machine: 8-wide out-of-order, 128-entry window, the
	// paper's caches, branch predictor, and functional unit pool.
	sim := core.NewSimulator(core.DefaultMachine())

	// Simulate 200k instructions of a SPEC2000-like benchmark with
	// deterministic clock gating.
	res, err := sim.RunBenchmark("gcc", core.SchemeDCG, 200_000)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Print(res.Summary())
	fmt.Printf("\nDCG gated away %.1f%% of total processor power.\n", 100*res.Saving)
	fmt.Printf("Performance cost: exactly zero — run the baseline and compare:\n\n")

	base, err := sim.RunBenchmark("gcc", core.SchemeNone, 200_000)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  baseline: %d cycles   dcg: %d cycles   (identical: %v)\n",
		base.Cycles, res.Cycles, base.Cycles == res.Cycles)
}
