// custom_workload shows the two ways to bring your own workload to the
// simulator:
//
//  1. a custom synthetic Profile (here: a pointer-chasing, low-ILP
//     workload heavier than mcf), and
//  2. a real program, written in the simulator's assembly language,
//     executed by the functional emulator and timed by the pipeline.
//
// Both are run under the baseline and DCG to show how workload behaviour
// drives gating opportunity.
//
//	go run ./examples/custom_workload
package main

import (
	"fmt"
	"log"

	"dcg/internal/core"
	"dcg/internal/emu"
	"dcg/internal/trace"
	"dcg/internal/workload"
)

// chaser is a custom profile: nearly every load is a dependent pointer
// chase missing all the way to memory — the extreme of the paper's
// "frequent stalls afford large gating opportunity" observation.
func chaser() workload.Profile {
	return workload.Profile{
		Name: "chaser", Class: workload.ClassInt, Seed: 4242,
		Mix: workload.OpMix{
			IntALU: 0.40, Load: 0.30, Store: 0.05, Branch: 0.20, Jump: 0.05,
		}.Normalize(),
		Mem: workload.MemMix{
			HotFrac: 0.20, WarmFrac: 0.10, ColdFrac: 0.70,
			HotBytes: 16 << 10, WarmBytes: 128 << 10, ColdBytes: 256 << 20,
			Stride: 16, PointerChase: true, ChaseFrac: 0.8,
		},
		Branch: workload.BranchMix{
			LoopFrac: 0.6, BiasedFrac: 0.3, RandomFrac: 0.1,
			LoopIterMean: 24, BiasedTakenProb: 0.9, CallFrac: 0.2,
		},
		Blocks: 96, BlockLenMean: 14, DepDistMean: 8, SerialFrac: 0.15,
	}
}

// kernel is a real program: a blocked vector reduction with a function
// call in the loop.
const kernel = `
    addi r1, r0, 2000      ; outer trip count
    lui  r10, 1            ; array base
    addi r2, r0, 0         ; accumulator
outer:
    call body
    subi r1, r1, 1
    bne  r1, r0, outer
    halt
body:
    ld   r3, r10, 0
    ld   r4, r10, 8
    add  r5, r3, r4
    add  r2, r2, r5
    addi r10, r10, 16
    and  r10, r10, r11     ; wrap within the array
    ret  r31
`

func main() {
	sim := core.NewSimulator(core.DefaultMachine())

	// --- Part 1: custom synthetic profile. ---
	fmt.Println("== custom synthetic profile: 'chaser' ==")
	prof := chaser()
	for _, kind := range []core.SchemeKind{core.SchemeNone, core.SchemeDCG} {
		gen, err := workload.NewGenerator(prof)
		if err != nil {
			log.Fatal(err)
		}
		res, err := sim.RunSource(trace.NewLimitSource(gen, 100_000), kind)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-5s IPC %.2f  dl1-miss %.0f%%  power saving %.1f%%\n",
			res.Scheme, res.IPC, 100*res.DL1MissRate, 100*res.Saving)
	}
	fmt.Println("  (a machine this stalled gives DCG its biggest wins, like mcf/lucas)")

	// --- Part 2: a real assembled program on the pipeline. ---
	fmt.Println("\n== assembled kernel on the pipeline ==")
	run := func(kind core.SchemeKind) *core.Result {
		m := emu.MustAssemble("kernel", kernel)
		m.IntRegs[11] = 0x1FFF0 // wrap mask keeps the array in 64KB
		m.MaxInsts = 500_000
		res, err := sim.RunSource(m, kind)
		if err != nil {
			log.Fatal(err)
		}
		return res
	}
	base := run(core.SchemeNone)
	dcg := run(core.SchemeDCG)
	fmt.Printf("  baseline: %d cycles, IPC %.2f\n", base.Cycles, base.IPC)
	fmt.Printf("  dcg:      %d cycles, IPC %.2f, saving %.1f%% (identical cycles: %v)\n",
		dcg.Cycles, dcg.IPC, 100*dcg.Saving, base.Cycles == dcg.Cycles)
}
