// kernels runs the real-program kernel library (assembled from the
// simulator's ISA, executed by the functional emulator) through the
// cycle-level pipeline under DCG, showing how program character drives
// gating opportunity: serial pointer chases idle the machine and gate
// deeply, dense loops keep it busy.
//
//	go run ./examples/kernels
package main

import (
	"fmt"
	"log"

	"dcg/internal/core"
	"dcg/internal/kernels"
)

func main() {
	sim := core.NewSimulator(core.DefaultMachine())

	fmt.Printf("%-8s %9s %7s %8s %8s  %s\n",
		"kernel", "insts", "IPC", "save%", "cycles", "description")
	for _, k := range kernels.All() {
		// Ground truth first: the kernel must compute the right answer.
		if _, err := k.Verify(); err != nil {
			log.Fatal(err)
		}
		res, err := sim.RunSource(k.Machine(), core.SchemeDCG)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-8s %9d %7.2f %7.1f%% %8d  %s\n",
			k.Name, res.Committed, res.IPC, 100*res.Saving, res.Cycles, k.Desc)
	}
	fmt.Println("\nNote the spread: the serial pointer chase gates far more of the")
	fmt.Println("machine than the dense loops — the same effect that makes mcf and")
	fmt.Println("lucas the paper's best DCG cases.")
}
