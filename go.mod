module dcg

go 1.22
