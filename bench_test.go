// Package dcg's root benchmark harness regenerates every table and figure
// of the paper's evaluation as a testing.B benchmark (one per exhibit),
// reporting the headline quantities as custom metrics, plus throughput
// micro-benchmarks for the substrate components.
//
// Run everything:
//
//	go test -bench=. -benchmem
//
// Regenerate one figure's numbers at higher fidelity:
//
//	go test -bench=Fig10 -benchtime=1x
//	go run ./cmd/dcgrepro -n 500000   # full-resolution tables
package dcg_test

import (
	"context"
	"fmt"
	"testing"

	"dcg/internal/config"
	"dcg/internal/core"
	"dcg/internal/cpu"
	"dcg/internal/experiments"
	"dcg/internal/mem"
	"dcg/internal/simrun"
	"dcg/internal/trace"
	"dcg/internal/usagetrace"
	"dcg/internal/workload"
)

// benchInsts keeps each exhibit's regeneration fast enough for -bench=.
// while preserving the paper's shape; cmd/dcgrepro runs the full version.
const benchInsts = 60_000

// benchSubset is a representative 4-benchmark slice (2 int + 2 fp,
// including the mcf/lucas stall outlier class).
var benchSubset = []string{"gzip", "mcf", "swim", "mesa"}

func newRunner() *experiments.Runner {
	return experiments.NewRunner(experiments.Options{
		Insts:      benchInsts,
		Warmup:     50_000,
		Benchmarks: benchSubset,
	})
}

// BenchmarkTable1Baseline measures a baseline (no gating) run of the
// Table 1 machine and reports its IPC — the substrate under every figure.
func BenchmarkTable1Baseline(b *testing.B) {
	for i := 0; i < b.N; i++ {
		sim := core.NewSimulator(core.DefaultMachine())
		res, err := sim.RunBenchmark("gcc", core.SchemeNone, benchInsts)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.IPC, "IPC")
		b.ReportMetric(float64(res.Cycles), "cycles")
	}
}

// BenchmarkSec44IntALUSweep regenerates the section 4.4 sweep (8/6/4
// integer ALUs) and reports the relative performance of the 6- and 4-ALU
// machines (paper: 98.8% and 92.7% worst-case).
func BenchmarkSec44IntALUSweep(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s, err := newRunner().Sec44ALUSweep()
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(100*s.Rows[1].RelPerf, "relperf6%")
		b.ReportMetric(100*s.Rows[2].RelPerf, "relperf4%")
	}
}

// reportComparison publishes each series' suite means as metrics.
func reportComparison(b *testing.B, c *experiments.Comparison) {
	b.Helper()
	for _, s := range c.Series {
		b.ReportMetric(100*s.IntMean, s.Scheme+"-int%")
		b.ReportMetric(100*s.FPMean, s.Scheme+"-fp%")
	}
}

// BenchmarkFig10TotalPower regenerates Figure 10: total power savings of
// DCG vs PLB-orig vs PLB-ext (paper: 20.9/18.8, 6.3/4.9, 11.0/8.7).
func BenchmarkFig10TotalPower(b *testing.B) {
	for i := 0; i < b.N; i++ {
		c, err := newRunner().Fig10()
		if err != nil {
			b.Fatal(err)
		}
		reportComparison(b, c)
	}
}

// BenchmarkFig11PowerDelay regenerates Figure 11: power-delay savings
// (paper: DCG equals its power saving; PLB-orig 3.5/2.0; PLB-ext 8.3/5.9).
func BenchmarkFig11PowerDelay(b *testing.B) {
	for i := 0; i < b.N; i++ {
		c, err := newRunner().Fig11()
		if err != nil {
			b.Fatal(err)
		}
		reportComparison(b, c)
	}
}

// BenchmarkFig12IntUnits regenerates Figure 12: integer execution unit
// power savings (paper: DCG ~72%, PLB-ext ~29.6%).
func BenchmarkFig12IntUnits(b *testing.B) {
	for i := 0; i < b.N; i++ {
		c, err := newRunner().Fig12()
		if err != nil {
			b.Fatal(err)
		}
		reportComparison(b, c)
	}
}

// BenchmarkFig13FPUnits regenerates Figure 13: FP unit power savings
// (paper: DCG 77.2% on fp / ~100% on int; PLB-ext 23.0%).
func BenchmarkFig13FPUnits(b *testing.B) {
	for i := 0; i < b.N; i++ {
		c, err := newRunner().Fig13()
		if err != nil {
			b.Fatal(err)
		}
		reportComparison(b, c)
	}
}

// BenchmarkFig14Latches regenerates Figure 14: pipeline latch power
// savings including DCG's control overhead (paper: DCG 41.6%, PLB-ext
// 17.6%).
func BenchmarkFig14Latches(b *testing.B) {
	for i := 0; i < b.N; i++ {
		c, err := newRunner().Fig14()
		if err != nil {
			b.Fatal(err)
		}
		reportComparison(b, c)
	}
}

// BenchmarkFig15DCache regenerates Figure 15: D-cache power savings
// (paper: DCG 22.6%, PLB-ext 8.1%).
func BenchmarkFig15DCache(b *testing.B) {
	for i := 0; i < b.N; i++ {
		c, err := newRunner().Fig15()
		if err != nil {
			b.Fatal(err)
		}
		reportComparison(b, c)
	}
}

// BenchmarkFig16ResultBus regenerates Figure 16: result bus driver power
// savings (paper: DCG 59.6%, PLB-ext 32.2%).
func BenchmarkFig16ResultBus(b *testing.B) {
	for i := 0; i < b.N; i++ {
		c, err := newRunner().Fig16()
		if err != nil {
			b.Fatal(err)
		}
		reportComparison(b, c)
	}
}

// BenchmarkFig17DeepPipeline regenerates Figure 17: DCG savings on the
// 8-stage vs 20-stage pipeline (paper: 19.9% vs 24.5%).
func BenchmarkFig17DeepPipeline(b *testing.B) {
	for i := 0; i < b.N; i++ {
		c, err := newRunner().Fig17()
		if err != nil {
			b.Fatal(err)
		}
		s8, s20 := c.Series[0], c.Series[1]
		b.ReportMetric(100*(s8.IntMean+s8.FPMean)/2, "8stage%")
		b.ReportMetric(100*(s20.IntMean+s20.FPMean)/2, "20stage%")
	}
}

// BenchmarkUtilization regenerates the section 5.2-5.5 baseline structure
// utilisations that the paper's expected-savings arithmetic builds on.
func BenchmarkUtilization(b *testing.B) {
	for i := 0; i < b.N; i++ {
		u, err := newRunner().Utilization()
		if err != nil {
			b.Fatal(err)
		}
		var intU, latch, ports, bus float64
		for _, row := range u.Rows {
			intU += row.Util.IntUnits
			latch += row.Util.Latches
			ports += row.Util.DPorts
			bus += row.Util.ResultBus
		}
		n := float64(len(u.Rows))
		b.ReportMetric(100*intU/n, "int-util%")
		b.ReportMetric(100*latch/n, "latch-util%")
		b.ReportMetric(100*ports/n, "dport-util%")
		b.ReportMetric(100*bus/n, "bus-util%")
	}
}

// BenchmarkAblationDCGContribution regenerates the mechanism-contribution
// ablation (units -> +latches -> +dcache -> +bus) and reports each step's
// cumulative saving.
func BenchmarkAblationDCGContribution(b *testing.B) {
	for i := 0; i < b.N; i++ {
		a, err := newRunner().DCGContribution()
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(100*a.Rows[0].Saving, "units%")
		b.ReportMetric(100*a.Rows[1].Saving, "+latch%")
		b.ReportMetric(100*a.Rows[2].Saving, "+dcache%")
		b.ReportMetric(100*a.Rows[3].Saving, "full%")
	}
}

// BenchmarkAblationSelectionPolicy regenerates the section 3.1 policy
// ablation and reports clock-gate control toggles per cycle.
func BenchmarkAblationSelectionPolicy(b *testing.B) {
	for i := 0; i < b.N; i++ {
		a, err := newRunner().SelectionPolicy()
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(100*a.Rows[0].Saving, "seq%")
		b.ReportMetric(100*a.Rows[1].Saving, "rr%")
	}
}

// BenchmarkAblationLeakage regenerates the leakage-erosion sweep.
func BenchmarkAblationLeakage(b *testing.B) {
	for i := 0; i < b.N; i++ {
		a, err := newRunner().Leakage()
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(100*a.Rows[0].Saving, "lk0%")
		b.ReportMetric(100*a.Rows[len(a.Rows)-1].Saving, "lk40%")
	}
}

// ---- Substrate micro-benchmarks ----

// BenchmarkSimulatorThroughput measures raw simulation speed in
// instructions per second of host time.
func BenchmarkSimulatorThroughput(b *testing.B) {
	prof, _ := workload.ByName("gcc")
	b.ResetTimer()
	total := 0
	for i := 0; i < b.N; i++ {
		gen, err := workload.NewGenerator(prof)
		if err != nil {
			b.Fatal(err)
		}
		c, err := cpu.New(config.Default(), trace.NewLimitSource(gen, 100_000))
		if err != nil {
			b.Fatal(err)
		}
		if _, err := c.Run(0); err != nil {
			b.Fatal(err)
		}
		total += 100_000
	}
	b.ReportMetric(float64(total)/b.Elapsed().Seconds(), "insts/s")
}

// BenchmarkWorkloadGenerator measures stream generation throughput.
func BenchmarkWorkloadGenerator(b *testing.B) {
	prof, _ := workload.ByName("swim")
	gen, err := workload.NewGenerator(prof)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		gen.Next()
	}
}

// BenchmarkCacheAccess measures the D-cache model's access latency.
func BenchmarkCacheAccess(b *testing.B) {
	c, err := mem.NewCache(config.Default().DL1)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Access(uint64(i*64)&0xFFFFF, i&7 == 0)
	}
}

// BenchmarkDCGRun measures a full DCG-instrumented simulation (core +
// power accounting + gating controller), the configuration every figure
// uses.
func BenchmarkDCGRun(b *testing.B) {
	sim := core.NewSimulator(core.DefaultMachine())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := sim.RunBenchmark("swim", core.SchemeDCG, benchInsts)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(100*res.Saving, "save%")
	}
}

// ---- Capture-once / replay-many ----

// BenchmarkCaptureTiming measures the capture side of the split: one core
// timing simulation recording its per-cycle usage trace. The trace size
// is reported so the timing cache's residency cost is visible.
func BenchmarkCaptureTiming(b *testing.B) {
	sim := core.NewSimulator(core.DefaultMachine())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tm, err := sim.CaptureBenchmark("swim", benchInsts)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(tm.Trace.SizeBytes()), "trace-B")
		b.ReportMetric(float64(tm.Trace.Cycles()), "cycles")
	}
}

// BenchmarkReplayEvaluate measures the replay side: evaluating the DCG
// scheme by streaming a captured trace through the gating controller and
// power accountant, with no core timing work. Compare per-op time against
// BenchmarkDCGRun (the same evaluation done the direct way) for the
// capture-once/replay-many speedup.
func BenchmarkReplayEvaluate(b *testing.B) {
	sim := core.NewSimulator(core.DefaultMachine())
	tm, err := sim.CaptureBenchmark("swim", benchInsts)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := sim.EvaluateTiming(tm, core.SchemeDCG)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(100*res.Saving, "save%")
	}
}

// replayKinds is the full timing-neutral scheme set — every scheme the
// replay path accepts — used by the fused-vs-sequential benchmark pair.
var replayKinds = []core.SchemeKind{core.SchemeNone, core.SchemeDCG, core.SchemeOracle}

// BenchmarkReplaySingle measures the pre-fusion way of evaluating k
// schemes over one capture: k independent sequential replays, each
// streaming its own decode of the encoded trace. One op = all k schemes,
// so ns/op compares directly against BenchmarkReplayFusedN.
func BenchmarkReplaySingle(b *testing.B) {
	sim := core.NewSimulator(core.DefaultMachine())
	tm, err := sim.CaptureBenchmark("swim", benchInsts)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, kind := range replayKinds {
			if _, err := sim.EvaluateTiming(tm, kind); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// BenchmarkReplayFusedN measures the fused engine on the same work as
// BenchmarkReplaySingle: all k schemes evaluated in one pass over the
// memoized columnar decode (one decode per capture, ever — see
// docs/PERFORMANCE.md). Results are bit-identical to the sequential path
// (TestFusedReplayMatchesSequentialBitForBit). The packed kernel is
// disabled so this measures the scalar fused engine specifically;
// BenchmarkReplayPackedN is the packed counterpart.
func BenchmarkReplayFusedN(b *testing.B) {
	sim := core.NewSimulator(core.DefaultMachine())
	sim.DisablePackedReplay = true
	tm, err := sim.CaptureBenchmark("swim", benchInsts)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		results, err := sim.EvaluateTimingAll(tm, replayKinds)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(100*results[1].Saving, "dcg-save%")
	}
}

// BenchmarkReplayPackedN measures the bit-packed columnar kernel on the
// same work as BenchmarkReplayFusedN: all k timing-neutral schemes
// derived word-at-a-time from the decode-time bit-planes and schedule
// aggregates, no per-cycle callbacks at all. Results are bit-identical
// to both scalar paths (TestPackedReplayMatchesScalarBitForBit).
func BenchmarkReplayPackedN(b *testing.B) {
	sim := core.NewSimulator(core.DefaultMachine())
	// Pin the serial kernel: this is the single-threaded packed baseline
	// that BenchmarkReplayPackedParallel's speedups are measured against,
	// and the allocs/op CI gate relies on it not taking the sharded path.
	sim.ReplayWorkers = 1
	tm, err := sim.CaptureBenchmark("swim", benchInsts)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		results, err := sim.EvaluateTimingPacked(tm, replayKinds)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(100*results[1].Saving, "dcg-save%")
	}
}

// BenchmarkReplayPackedParallel is BenchmarkReplayPackedN on the
// cycle-sharded engine, one sub-benchmark per worker count so the names
// stay deterministic under the CI harness's -cpu=1 pin (a -cpu sweep at
// -benchtime=1x misattributes its first variant to the discovery run's
// GOMAXPROCS). The workers=1 variant is the serial kernel by
// construction — its allocs/op is CI-gated against regression. Real
// speedups need real cores: run `go test -bench='Parallel$' -benchmem`
// without -cpu on a multi-core box.
func BenchmarkReplayPackedParallel(b *testing.B) {
	sim := core.NewSimulator(core.DefaultMachine())
	tm, err := sim.CaptureBenchmark("swim", benchInsts)
	if err != nil {
		b.Fatal(err)
	}
	for _, workers := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			sim.ReplayWorkers = workers
			for i := 0; i < b.N; i++ {
				results, err := sim.EvaluateTimingPacked(tm, replayKinds)
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(100*results[1].Saving, "dcg-save%")
			}
		})
	}
}

// ---- Channelized traces (format v2) ----

// BenchmarkCaptureTimingChannels is BenchmarkCaptureTiming with the
// latchvalue channel recorded alongside usage — the capture a sweep
// runs when its scheme set includes the value-dependent family. The
// reported trace-B shows the channel's size cost over the usage-only
// capture.
func BenchmarkCaptureTimingChannels(b *testing.B) {
	sim := core.NewSimulator(core.DefaultMachine())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tm, err := sim.CaptureBenchmark("swim", benchInsts, usagetrace.ChannelLatchValue)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(tm.Trace.SizeBytes()), "trace-B")
	}
}

// BenchmarkReplayPackedNChannelized runs the packed kernel's scheme set
// over a trace that also carries the latchvalue channel: the extra
// channel must not tax the packed path (it is decoded once and ignored
// by the bit-plane kernels), so per-op time should match
// BenchmarkReplayPackedN.
func BenchmarkReplayPackedNChannelized(b *testing.B) {
	sim := core.NewSimulator(core.DefaultMachine())
	sim.ReplayWorkers = 1 // serial kernel, comparable to ReplayPackedN
	tm, err := sim.CaptureBenchmark("swim", benchInsts, usagetrace.ChannelLatchValue)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		results, err := sim.EvaluateTimingPacked(tm, replayKinds)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(100*results[1].Saving, "dcg-save%")
	}
}

// valueKinds is the value-dependent family: both replay `scalar` (the
// per-lane comparator state needs the per-cycle stream), so this set
// exercises the fused scalar engine even with packed replay enabled.
var valueKinds = []core.SchemeKind{core.SchemeDDCG, core.SchemeDCGDDCG}

// BenchmarkReplayScalarDDCG measures the value-dependent replay path:
// the ddcg family evaluated in one fused pass over a latchvalue-carrying
// capture. This is the cost model for the `families` comparison's second
// timing group.
func BenchmarkReplayScalarDDCG(b *testing.B) {
	sim := core.NewSimulator(core.DefaultMachine())
	tm, err := sim.CaptureBenchmark("swim", benchInsts, usagetrace.ChannelLatchValue)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		results, err := sim.EvaluateTimingAll(tm, valueKinds)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(100*results[0].Saving, "ddcg-save%")
	}
}

// BenchmarkExecReplayUntraced drives the executor's replay-serving path
// with tracing disabled — the configuration every deployment runs until
// a tracer is attached. The two keys alternate through a result memo of
// one entry, so every op misses the memo and is answered by replaying
// the shared timing capture through Exec.Do's full span-instrumented
// path. CI gates this benchmark's allocs/op against the committed
// baseline: span instrumentation must stay free when no span is in the
// context.
func BenchmarkExecReplayUntraced(b *testing.B) {
	exec := simrun.NewExec(1, 0)
	ctx := context.Background()
	warm := simrun.Key{Bench: "swim", Scheme: core.SchemeDCG, Insts: benchInsts}
	if _, _, err := exec.Do(ctx, warm); err != nil {
		b.Fatal(err)
	}
	keys := [2]simrun.Key{
		{Bench: "swim", Scheme: core.SchemeNone, Insts: benchInsts},
		{Bench: "swim", Scheme: core.SchemeOracle, Insts: benchInsts},
	}
	// One replay outside the timer performs the one-time columnar decode,
	// so the timed ops measure steady-state replay cost only.
	if _, _, err := exec.Do(ctx, keys[1]); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := exec.Do(ctx, keys[i%2]); err != nil {
			b.Fatal(err)
		}
	}
}
