// Command dcgserve runs the clock-gating simulator as an HTTP/JSON
// service: bounded parallelism, request coalescing, and a result cache
// over the same simulation core as dcgsim (see docs/SERVICE.md).
//
// Usage:
//
//	dcgserve [-addr :8080] [-workers N] [-cache 1024] [-timing-cache 16]
//	         [-default-insts 300000] [-max-insts 5000000] [-timeout 60s]
//
// Try it:
//
//	curl localhost:8080/v1/sim?benchmark=gzip&scheme=dcg
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"dcg/internal/server"
)

func main() {
	var (
		addr         = flag.String("addr", ":8080", "listen address")
		workers      = flag.Int("workers", 0, "max concurrent simulations (0 = GOMAXPROCS)")
		cacheSize    = flag.Int("cache", 1024, "max memoised results (negative = unbounded)")
		timingCache  = flag.Int("timing-cache", 16, "max cached timing traces, megabytes each (negative = unbounded)")
		defaultInsts = flag.Uint64("default-insts", 300_000, "instructions when a request omits insts")
		maxInsts     = flag.Uint64("max-insts", 5_000_000, "reject requests above this instruction count")
		timeout      = flag.Duration("timeout", 60*time.Second, "per-request simulation deadline")
		drainWait    = flag.Duration("drain-wait", 30*time.Second, "shutdown grace period for in-flight requests")
	)
	flag.Parse()

	srv := server.New(server.Config{
		Workers:         *workers,
		CacheSize:       *cacheSize,
		TimingCacheSize: *timingCache,
		DefaultInsts:    *defaultInsts,
		MaxInsts:        *maxInsts,
		DefaultTimeout:  *timeout,
	})

	httpSrv := &http.Server{
		Addr:              *addr,
		Handler:           srv.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}

	errc := make(chan error, 1)
	go func() {
		log.Printf("dcgserve listening on %s", *addr)
		errc <- httpSrv.ListenAndServe()
	}()

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)

	select {
	case err := <-errc:
		log.Fatalf("serve: %v", err)
	case sig := <-sigc:
		log.Printf("got %v; draining (grace %v)", sig, *drainWait)
	}

	// Graceful shutdown: flip /healthz to 503 so load balancers rotate
	// us out, then let in-flight simulations finish within the grace
	// period. A second signal aborts immediately.
	srv.Drain()
	ctx, cancel := context.WithTimeout(context.Background(), *drainWait)
	defer cancel()
	go func() {
		<-sigc
		log.Print("second signal; aborting")
		cancel()
	}()
	if err := httpSrv.Shutdown(ctx); err != nil && !errors.Is(err, http.ErrServerClosed) {
		fmt.Fprintf(os.Stderr, "shutdown: %v\n", err)
		os.Exit(1)
	}
	log.Print("drained; bye")
}
