// Command dcgserve runs the clock-gating simulator as an HTTP/JSON
// service: bounded parallelism, request coalescing, and a result cache
// over the same simulation core as dcgsim (see docs/SERVICE.md).
//
// Usage:
//
//	dcgserve [-addr :8080] [-workers N] [-cache 1024] [-timing-cache 16]
//	         [-default-insts 300000] [-max-insts 5000000] [-timeout 60s]
//	         [-log-level info] [-log-format text] [-pprof] [-enable-trace]
//	         [-store-dir DIR] [-store-max-bytes N] [-sweep-dir DIR]
//	         [-trace-spans 4096] [-trace-slow-ms 0] [-version]
//	         [-cluster] [-cluster-workers N] [-lease-ttl 10s] [-sweep-retries N]
//
// With -cluster (requires -sweep-dir), the server becomes a sweep
// coordinator: submitted sweeps execute through a fleet of lease-pulling
// workers instead of the in-process engine. -cluster-workers embedded
// worker loops run inside this process (0 makes a pure coordinator for
// external dcgworker processes), the lease protocol is served under
// /cluster/v1/, and — with -store-dir — the artifact store under
// /store/v1/ for workers to remote-tier against. See docs/SWEEPS.md.
//
// Try it:
//
//	curl localhost:8080/v1/sim?benchmark=gzip&scheme=dcg
//	curl localhost:8080/metrics
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"net/http"
	"os"
	"os/signal"
	"runtime"
	"strings"
	"syscall"
	"time"

	"dcg/internal/cluster"
	"dcg/internal/core"
	"dcg/internal/obs"
	"dcg/internal/server"
	"dcg/internal/simrun"
	"dcg/internal/store"
)

// newLogger builds the process logger from the -log-level/-log-format
// flags. Logs go to stderr; stdout stays clean for tooling.
func newLogger(level, format string) (*slog.Logger, error) {
	var lv slog.Level
	if err := lv.UnmarshalText([]byte(level)); err != nil {
		return nil, fmt.Errorf("bad -log-level %q (want debug, info, warn or error)", level)
	}
	opts := &slog.HandlerOptions{Level: lv}
	switch strings.ToLower(format) {
	case "text":
		return slog.New(slog.NewTextHandler(os.Stderr, opts)), nil
	case "json":
		return slog.New(slog.NewJSONHandler(os.Stderr, opts)), nil
	default:
		return nil, fmt.Errorf("bad -log-format %q (want text or json)", format)
	}
}

func main() {
	var (
		addr         = flag.String("addr", ":8080", "listen address")
		workers      = flag.Int("workers", 0, "max concurrent simulations (0 = GOMAXPROCS)")
		cacheSize    = flag.Int("cache", 1024, "max memoised results (negative = unbounded)")
		timingCache  = flag.Int("timing-cache", 16, "max cached timing traces, megabytes each (negative = unbounded)")
		defaultInsts = flag.Uint64("default-insts", 300_000, "instructions when a request omits insts")
		maxInsts     = flag.Uint64("max-insts", 5_000_000, "reject requests above this instruction count")
		timeout      = flag.Duration("timeout", 60*time.Second, "per-request simulation deadline")
		drainWait    = flag.Duration("drain-wait", 30*time.Second, "shutdown grace period for in-flight requests")
		logLevel     = flag.String("log-level", "info", "log verbosity: debug, info, warn, error")
		logFormat    = flag.String("log-format", "text", "log encoding: text or json")
		pprofOn      = flag.Bool("pprof", false, "mount net/http/pprof under /debug/pprof/")
		traceOn      = flag.Bool("enable-trace", false, "mount /v1/trace (uncached, fully instrumented simulations)")
		storeDir     = flag.String("store-dir", "", "persistent artifact store directory (restart-warm cache; empty = memory only)")
		storeMax     = flag.Int64("store-max-bytes", 0, "evict least-recently-used store artifacts above this size (0 = unbounded)")
		sweepDir     = flag.String("sweep-dir", "", "sweep job directory; mounts the /v1/sweeps API (empty = disabled)")
		traceSpans   = flag.Int("trace-spans", obs.DefaultSpanCapacity, "finished request/stage spans retained for /v1/traces (0 = tracing off)")
		traceSlowMS  = flag.Int("trace-slow-ms", 0, "log spans slower than this many milliseconds at warn (0 = off)")
		clusterOn    = flag.Bool("cluster", false, "coordinate sweeps across a worker fleet (requires -sweep-dir); mounts /cluster/v1/")
		clusterWkrs  = flag.Int("cluster-workers", -1, "embedded cluster worker loops (-1 = GOMAXPROCS, 0 = pure coordinator)")
		leaseTTL     = flag.Duration("lease-ttl", 10*time.Second, "cluster work-lease TTL; a silent worker's items requeue after this")
		sweepRetries = flag.Int("sweep-retries", 0, "re-attempts for failed cluster sweep items")
		replayPar    = flag.Int("replay-par", runtime.GOMAXPROCS(0), "replay/decode worker goroutines per evaluation (1 = serial kernel; see docs/PERFORMANCE.md for the request- vs shard-level parallelism trade-off)")
		version      = flag.Bool("version", false, "print build version and exit")
	)
	flag.Parse()
	core.SetReplayParallelism(*replayPar)

	if *version {
		v, rev := obs.BuildInfo()
		fmt.Printf("dcgserve %s (%s)\n", v, rev)
		return
	}

	logger, err := newLogger(*logLevel, *logFormat)
	if err != nil {
		fmt.Fprintln(os.Stderr, "dcgserve:", err)
		os.Exit(2)
	}

	var artifacts *store.Store
	if *storeDir != "" {
		artifacts, err = store.Open(*storeDir, *storeMax, logger)
		if err != nil {
			fmt.Fprintln(os.Stderr, "dcgserve:", err)
			os.Exit(2)
		}
		logger.Info("artifact store open", "dir", *storeDir, "max_bytes", *storeMax)
	}

	var tracer *obs.Tracer
	if *traceSpans > 0 {
		tracer = obs.NewTracer(*traceSpans)
		tracer.SetSlowThreshold(time.Duration(*traceSlowMS) * time.Millisecond)
	}

	var hub *cluster.Hub
	if *clusterOn {
		if *sweepDir == "" {
			fmt.Fprintln(os.Stderr, "dcgserve: -cluster requires -sweep-dir")
			os.Exit(2)
		}
		hub = cluster.NewHub(cluster.HubConfig{
			LeaseTTL: *leaseTTL,
			Retries:  *sweepRetries,
			Log:      logger,
			Tracer:   tracer,
		})
	}

	srv := server.New(server.Config{
		Workers:         *workers,
		CacheSize:       *cacheSize,
		TimingCacheSize: *timingCache,
		DefaultInsts:    *defaultInsts,
		MaxInsts:        *maxInsts,
		DefaultTimeout:  *timeout,
		Logger:          logger,
		EnablePprof:     *pprofOn,
		EnableTrace:     *traceOn,
		Store:           artifacts,
		SweepDir:        *sweepDir,
		Tracer:          tracer,
		Cluster:         hub,
	})

	// Embedded fleet: worker loops inside the coordinator process, polling
	// the hub directly and sharing the artifact store on disk. They stop
	// on shutdown; any in-flight leases expire and requeue for external
	// workers (or a restart).
	workerCtx, stopWorkers := context.WithCancel(context.Background())
	defer stopWorkers()
	if hub != nil {
		n := *clusterWkrs
		if n < 0 {
			n = runtime.GOMAXPROCS(0)
		}
		if n > 0 {
			host, _ := os.Hostname()
			if host == "" {
				host = "local"
			}
			exec := simrun.NewExec(*cacheSize, *timingCache)
			exec.Store = artifacts
			for i := 0; i < n; i++ {
				w := &cluster.Worker{
					Name:   host,
					Client: cluster.DirectClient{Hub: hub},
					Exec:   exec,
					Log:    logger,
					Tracer: tracer,
				}
				go w.Run(workerCtx)
			}
			logger.Info("embedded cluster workers running", "name", host, "loops", n)
		} else {
			logger.Info("pure coordinator: no embedded workers; point dcgworker at this listener")
		}
	}

	httpSrv := &http.Server{
		Addr:              *addr,
		Handler:           srv.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}

	errc := make(chan error, 1)
	go func() {
		v, rev := obs.BuildInfo()
		logger.Info("dcgserve listening", "addr", *addr, "version", v,
			"revision", rev, "pprof", *pprofOn, "trace", *traceOn,
			"sweeps", *sweepDir != "", "spans", *traceSpans)
		errc <- httpSrv.ListenAndServe()
	}()

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)

	select {
	case err := <-errc:
		logger.Error("serve failed", "err", err)
		os.Exit(1)
	case sig := <-sigc:
		logger.Info("draining", "signal", sig.String(), "grace", drainWait.String())
	}

	// Graceful shutdown: flip /healthz to 503 so load balancers rotate
	// us out, then let in-flight simulations finish within the grace
	// period. A second signal aborts immediately.
	srv.Drain()
	ctx, cancel := context.WithTimeout(context.Background(), *drainWait)
	defer cancel()
	go func() {
		<-sigc
		logger.Warn("second signal; aborting")
		cancel()
	}()
	if err := httpSrv.Shutdown(ctx); err != nil && !errors.Is(err, http.ErrServerClosed) {
		fmt.Fprintf(os.Stderr, "shutdown: %v\n", err)
		os.Exit(1)
	}
	logger.Info("drained; bye")
}
