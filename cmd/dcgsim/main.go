// Command dcgsim runs one benchmark (or the full suite) under one or more
// clock-gating schemes and prints performance, utilisation, and power
// statistics. When several timing-neutral schemes (e.g. none, dcg,
// oracle) are requested together, the benchmark's core timing is
// simulated once and each scheme is evaluated by replaying the captured
// usage trace; -scheme accepts any name in the scheme registry (the
// -help text enumerates them).
//
// Usage:
//
//	dcgsim -bench gcc -scheme dcg -n 500000
//	dcgsim -bench all -scheme none,dcg,oracle -n 200000
//	dcgsim -bench mcf -scheme plb-ext -deep -v
//	dcgsim -bench gzip -scheme dcg -trace-out gzip.trace.json
package main

import (
	"context"
	"flag"
	"fmt"
	"log/slog"
	"os"
	"runtime"
	"strings"
	"time"

	"dcg/internal/config"
	"dcg/internal/core"
	"dcg/internal/obs"
	"dcg/internal/power"
	"dcg/internal/stats"
	"dcg/internal/trace"
	"dcg/internal/workload"
)

func main() {
	var (
		bench   = flag.String("bench", "all", "benchmark name, or 'all', 'int', 'fp'")
		scheme  = flag.String("scheme", "dcg", "gating scheme(s), comma-separated: "+schemeNames())
		n       = flag.Uint64("n", 200_000, "dynamic instructions to simulate per benchmark")
		deep    = flag.Bool("deep", false, "use the 20-stage deep pipeline (section 5.6)")
		verbose = flag.Bool("v", false, "print the per-component energy breakdown")
		record  = flag.String("record", "", "capture the benchmark's dynamic stream to a trace file and exit")
		replay  = flag.String("replay", "", "simulate a previously recorded trace file instead of a benchmark")
		profile = flag.String("profile", "", "run a custom workload profile from a JSON file")

		traceOut    = flag.String("trace-out", "", "write pipeline telemetry as Chrome trace-event JSON (Perfetto-viewable); single -bench and -scheme")
		traceCSV    = flag.String("trace-csv", "", "write pipeline telemetry as per-window CSV; single -bench and -scheme")
		traceWindow = flag.Uint64("trace-window", obs.DefaultTraceWindow, "telemetry sample window in cycles")
		spanOut     = flag.String("span-out", "", "write capture/replay/full-run spans as JSONL to this file (same span model as the service's /v1/traces)")
		spanSlowMS  = flag.Int("span-slow-ms", 0, "report spans slower than this many milliseconds on stderr (0 = off)")

		cpuprofile = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memprofile = flag.String("memprofile", "", "write a heap (allocation) profile to this file on exit")

		replayPar = flag.Int("replay-par", runtime.GOMAXPROCS(0), "replay/decode worker goroutines per evaluation (1 = serial kernel)")
	)
	flag.Parse()
	core.SetReplayParallelism(*replayPar)

	stopProf, err := obs.StartProfiles(*cpuprofile, *memprofile)
	if err != nil {
		fmt.Fprintln(os.Stderr, "dcgsim:", err)
		os.Exit(2)
	}
	// Span tracing (the batch CLI's view of the service's span model):
	// one root span per benchmark, child spans per capture/replay/full
	// run, exported as JSONL on exit. Off unless -span-out is given.
	var tracer *obs.Tracer
	if *spanOut != "" {
		tracer = obs.NewTracer(0)
		tracer.SetSlowThreshold(time.Duration(*spanSlowMS) * time.Millisecond)
		tracer.SetLogger(slog.New(slog.NewTextHandler(os.Stderr, nil)))
	}
	writeSpans := func() {
		if tracer == nil {
			return
		}
		out, err := os.Create(*spanOut)
		if err == nil {
			err = obs.WriteSpansJSONL(out, tracer.Spans(obs.SpanFilter{}))
			if cerr := out.Close(); err == nil {
				err = cerr
			}
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, "dcgsim: writing -span-out:", err)
		}
	}

	// exit flushes the profiles and spans before terminating; every path
	// below must leave through it (os.Exit skips deferred calls).
	exit := func(code int) {
		writeSpans()
		if err := stopProf(); err != nil {
			fmt.Fprintln(os.Stderr, "dcgsim:", err)
		}
		os.Exit(code)
	}

	var kinds []core.SchemeKind
	for _, name := range strings.Split(*scheme, ",") {
		kind, err := core.ParseScheme(strings.TrimSpace(name))
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			exit(2)
		}
		kinds = append(kinds, kind)
	}
	kind := kinds[0]
	if len(kinds) > 1 && (*record != "" || *replay != "" || *profile != "") {
		fmt.Fprintln(os.Stderr, "dcgsim: -record/-replay/-profile take a single -scheme")
		exit(2)
	}

	machine := core.DefaultMachine()
	if *deep {
		machine = core.DeepMachine()
	}
	sim := core.NewSimulator(machine)

	if *traceOut != "" || *traceCSV != "" {
		switch {
		case len(kinds) > 1:
			fmt.Fprintln(os.Stderr, "dcgsim: -trace-out/-trace-csv take a single -scheme")
			exit(2)
		case *bench == "all" || *bench == "int" || *bench == "fp":
			fmt.Fprintln(os.Stderr, "dcgsim: -trace-out/-trace-csv take a single -bench name")
			exit(2)
		case *record != "" || *replay != "" || *profile != "":
			fmt.Fprintln(os.Stderr, "dcgsim: -trace-out/-trace-csv cannot combine with -record/-replay/-profile")
			exit(2)
		}
		if err := runPipeTrace(sim, machine, *bench, kind, *n, *traceOut, *traceCSV, *traceWindow, *verbose); err != nil {
			fmt.Fprintln(os.Stderr, "dcgsim:", err)
			exit(1)
		}
		exit(0)
	}

	if *record != "" {
		if err := recordTrace(*record, *bench, *n); err != nil {
			fmt.Fprintln(os.Stderr, "dcgsim:", err)
			exit(1)
		}
		exit(0)
	}
	if *replay != "" {
		if err := replayTrace(sim, *replay, kind, *verbose); err != nil {
			fmt.Fprintln(os.Stderr, "dcgsim:", err)
			exit(1)
		}
		exit(0)
	}
	if *profile != "" {
		if err := runProfile(sim, *profile, kind, *n, *verbose); err != nil {
			fmt.Fprintln(os.Stderr, "dcgsim:", err)
			exit(1)
		}
		exit(0)
	}

	var names []string
	switch *bench {
	case "all":
		names = core.Benchmarks()
	case "int":
		names = core.IntBenchmarks()
	case "fp":
		names = core.FPBenchmarks()
	default:
		names = []string{*bench}
	}

	headers := []string{"bench", "IPC", "save%", "int-u%", "fp-u%", "latch%", "dport%", "bus%", "bpred%", "dl1m%"}
	if len(kinds) > 1 {
		headers = append([]string{"bench", "scheme"}, headers[1:]...)
	}
	tbl := stats.NewTable(
		fmt.Sprintf("scheme=%s insts=%d depth=%d", *scheme, *n, machine.Pipeline.Depth),
		headers...)
	var savings []float64
	for _, name := range names {
		bctx := context.Background()
		var bsp *obs.Span
		if tracer != nil {
			bctx, bsp = tracer.StartRoot(bctx, "sim.bench")
			bsp.SetAttr("bench", name)
			bsp.SetAttrInt("insts", int64(*n))
		}
		results, err := runSchemes(bctx, sim, name, kinds, *n)
		bsp.SetError(err)
		bsp.Finish()
		if err != nil {
			fmt.Fprintf(os.Stderr, "dcgsim: %s: %v\n", name, err)
			exit(1)
		}
		for i, res := range results {
			row := []any{name}
			if len(kinds) > 1 {
				row = append(row, kinds[i].String())
			}
			row = append(row,
				fmt.Sprintf("%.2f", res.IPC),
				100*res.Saving,
				100*res.Util.IntUnits, 100*res.Util.FPUnits, 100*res.Util.Latches,
				100*res.Util.DPorts, 100*res.Util.ResultBus,
				100*res.BranchAccuracy, 100*res.DL1MissRate)
			tbl.AddRowf(row...)
			savings = append(savings, res.Saving)
			if *verbose {
				fmt.Println(res.Summary())
				fmt.Println(res.Energy.String())
			}
		}
	}
	fmt.Print(tbl.String())
	fmt.Printf("mean saving: %.1f%%\n", 100*stats.Mean(savings))

	if *verbose {
		m, _ := power.NewModel(machine)
		fmt.Printf("baseline per-cycle power: %.0f units\n", m.AllOnPower())
	}
	exit(0)
}

// runSchemes evaluates every requested scheme on one benchmark. When two
// or more of them are timing-neutral, the core timing is simulated once
// and those schemes are all evaluated in a single fused replay pass over
// the captured usage trace (core.EvaluateTimingAll) — one trace decode,
// one scan, bit-identical to direct runs. Schemes that perturb timing
// (PLB) always run the full simulation.
// schemeNames enumerates the registered schemes for the -scheme flag's
// help text, so the usage output can never drift from the registry.
func schemeNames() string {
	kinds := core.AllSchemes()
	names := make([]string, len(kinds))
	for i, k := range kinds {
		names[i] = string(k)
	}
	return strings.Join(names, ", ")
}

func runSchemes(ctx context.Context, sim *core.Simulator, bench string, kinds []core.SchemeKind, n uint64) ([]*core.Result, error) {
	var neutralKinds []core.SchemeKind
	for _, k := range kinds {
		if core.TimingNeutral(k) {
			neutralKinds = append(neutralKinds, k)
		}
	}
	out := make([]*core.Result, len(kinds))
	if len(neutralKinds) >= 2 {
		// The capture records the union of the trace channels the
		// requested schemes need (e.g. latchvalue for the ddcg family).
		_, csp := obs.StartSpan(ctx, "sim.capture")
		csp.SetAttrInt("schemes", int64(len(neutralKinds)))
		tm, err := sim.CaptureBenchmark(bench, n, core.ChannelUnion(neutralKinds...)...)
		csp.SetError(err)
		csp.Finish()
		if err != nil {
			return nil, err
		}
		_, rsp := obs.StartSpan(ctx, "sim.replay")
		rsp.SetAttr("engine", "fused")
		rsp.SetAttrInt("schemes", int64(len(neutralKinds)))
		fused, err := sim.EvaluateTimingAll(tm, neutralKinds)
		rsp.SetError(err)
		rsp.Finish()
		if err != nil {
			return nil, err
		}
		j := 0
		for i, k := range kinds {
			if core.TimingNeutral(k) {
				out[i] = fused[j]
				j++
			}
		}
	}
	for i, k := range kinds {
		if out[i] != nil {
			continue
		}
		_, fsp := obs.StartSpan(ctx, "sim.full")
		fsp.SetAttr("scheme", k.String())
		res, err := sim.RunBenchmark(bench, k, n)
		fsp.SetError(err)
		fsp.Finish()
		if err != nil {
			return nil, fmt.Errorf("%v: %w", k, err)
		}
		out[i] = res
	}
	return out, nil
}

// runPipeTrace runs one benchmark under one scheme with the pipeline
// telemetry recorder attached and writes the requested exports: Chrome
// trace-event JSON (jsonPath) and/or per-window CSV (csvPath).
func runPipeTrace(sim *core.Simulator, machine config.Config, bench string, kind core.SchemeKind, n uint64, jsonPath, csvPath string, window uint64, verbose bool) error {
	rec := obs.NewPipelineRecorder(machine, window, bench+"/"+kind.String())
	sim.Telemetry = rec
	defer func() { sim.Telemetry = nil }()
	res, err := sim.RunBenchmark(bench, kind, n)
	if err != nil {
		return err
	}
	write := func(path string, render func(w *os.File) error) error {
		f, err := os.Create(path)
		if err != nil {
			return err
		}
		if err := render(f); err != nil {
			f.Close()
			return err
		}
		return f.Close()
	}
	if jsonPath != "" {
		if err := write(jsonPath, func(f *os.File) error { return rec.WriteChromeTrace(f) }); err != nil {
			return err
		}
		fmt.Printf("wrote %d trace windows (%d cycles each) to %s\n", rec.Windows(), window, jsonPath)
	}
	if csvPath != "" {
		if err := write(csvPath, func(f *os.File) error { return rec.WriteCSV(f) }); err != nil {
			return err
		}
		fmt.Printf("wrote %d telemetry rows to %s\n", rec.Windows(), csvPath)
	}
	fmt.Print(res.Summary())
	if verbose {
		fmt.Println(res.Energy.String())
	}
	return nil
}

// recordTrace captures a benchmark's dynamic stream to a trace file.
func recordTrace(path, bench string, n uint64) error {
	prof, ok := workload.ByName(bench)
	if !ok {
		return fmt.Errorf("unknown benchmark %q (use a single name with -record)", bench)
	}
	gen, err := workload.NewGenerator(prof)
	if err != nil {
		return err
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	count, err := trace.Record(f, gen, n)
	if err != nil {
		return err
	}
	fmt.Printf("recorded %d instructions of %s to %s\n", count, bench, path)
	return nil
}

// replayTrace simulates a recorded trace file.
func replayTrace(sim *core.Simulator, path string, kind core.SchemeKind, verbose bool) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	src, err := trace.NewReader(f)
	if err != nil {
		return err
	}
	res, err := sim.RunSource(src, kind)
	if err != nil {
		return err
	}
	if src.Err() != nil {
		return src.Err()
	}
	fmt.Print(res.Summary())
	if verbose {
		fmt.Println(res.Energy.String())
	}
	return nil
}

// runProfile simulates a custom JSON workload profile.
func runProfile(sim *core.Simulator, path string, kind core.SchemeKind, n uint64, verbose bool) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	prof, err := workload.LoadProfile(f)
	if err != nil {
		return err
	}
	gen, err := workload.NewGenerator(prof)
	if err != nil {
		return err
	}
	res, err := sim.RunStream(gen, kind, n)
	if err != nil {
		return err
	}
	fmt.Print(res.Summary())
	if verbose {
		fmt.Println(res.Energy.String())
	}
	return nil
}
