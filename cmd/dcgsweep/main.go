// Command dcgsweep runs parameter-sweep jobs: a declarative spec
// (benchmarks × gating schemes × machine configurations) is expanded into
// a work DAG and executed on a bounded worker pool, checkpointing every
// completed item to an fsynced manifest. A killed or interrupted sweep
// resumes where it left off, and the final results stream is
// byte-identical to an uninterrupted run's (see docs/SWEEPS.md).
//
// Usage:
//
//	dcgsweep run -spec spec.json -dir jobs/myjob [-workers N] [-retries N]
//	dcgsweep resume -dir jobs/myjob
//	dcgsweep status -dir jobs/myjob
//
// Attach a persistent artifact store (shared with dcgserve) to make
// repeated sweeps warm across processes:
//
//	dcgsweep run -spec spec.json -dir jobs/myjob -store-dir /var/cache/dcg
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"os"
	"os/signal"
	"runtime"
	"strings"
	"syscall"
	"time"

	"dcg/internal/core"
	"dcg/internal/obs"
	"dcg/internal/simrun"
	"dcg/internal/store"
	"dcg/internal/sweep"
)

func usage() {
	fmt.Fprintln(os.Stderr, `usage:
  dcgsweep run    -spec FILE -dir DIR [options]   start a new sweep job
  dcgsweep resume -dir DIR [options]              continue an interrupted job
  dcgsweep status -dir DIR                        print a job's progress
  dcgsweep version                                print build version

options:`)
	newRunFlags("run").fs.PrintDefaults()
}

// runFlags are the options shared by run and resume.
type runFlags struct {
	fs          *flag.FlagSet
	spec        *string
	dir         *string
	workers     *int
	retries     *int
	storeDir    *string
	storeMax    *int64
	verbose     *bool
	logLevel    *string
	logFormat   *string
	traceSpans  *int
	traceSlowMS *int
	traceOut    *string
	cpuprofile  *string
	memprofile  *string
	replayPar   *int

	tracer *obs.Tracer // built by engine() when span tracing is enabled
}

func newRunFlags(name string) *runFlags {
	fs := flag.NewFlagSet(name, flag.ExitOnError)
	f := &runFlags{
		fs:          fs,
		dir:         fs.String("dir", "", "job directory (spec, manifest and results live here)"),
		workers:     fs.Int("workers", 0, "max concurrent simulations (0 = GOMAXPROCS)"),
		retries:     fs.Int("retries", 1, "re-attempts per failed item"),
		storeDir:    fs.String("store-dir", "", "persistent artifact store directory (shared with dcgserve)"),
		storeMax:    fs.Int64("store-max-bytes", 0, "evict least-recently-used store artifacts above this size (0 = unbounded)"),
		verbose:     fs.Bool("v", false, "log per-item progress (shorthand for -log-level info)"),
		logLevel:    fs.String("log-level", "", "log verbosity: debug, info, warn, error (default warn; info with -v)"),
		logFormat:   fs.String("log-format", "text", "log encoding: text or json"),
		traceSpans:  fs.Int("trace-spans", 0, "retain up to this many finished spans for -trace-out (0 = tracing off)"),
		traceSlowMS: fs.Int("trace-slow-ms", 0, "log spans slower than this many milliseconds at warn (0 = off)"),
		traceOut:    fs.String("trace-out", "", "write the job's spans as JSONL to this file on exit (implies tracing)"),
		cpuprofile:  fs.String("cpuprofile", "", "write a CPU profile to this file"),
		memprofile:  fs.String("memprofile", "", "write a heap (allocation) profile to this file on exit"),
		replayPar:   fs.Int("replay-par", runtime.GOMAXPROCS(0), "replay/decode worker goroutines per evaluation (1 = serial kernel)"),
	}
	if name == "run" {
		f.spec = fs.String("spec", "", "sweep spec JSON file (required)")
	}
	return f
}

// logger builds the process logger. -log-level wins when set; otherwise
// the historical behaviour holds: warn, or info under -v.
func (f *runFlags) logger() (*slog.Logger, error) {
	level := slog.LevelWarn
	if *f.verbose {
		level = slog.LevelInfo
	}
	if *f.logLevel != "" {
		if err := level.UnmarshalText([]byte(*f.logLevel)); err != nil {
			return nil, fmt.Errorf("bad -log-level %q (want debug, info, warn or error)", *f.logLevel)
		}
	}
	opts := &slog.HandlerOptions{Level: level}
	switch strings.ToLower(*f.logFormat) {
	case "text":
		return slog.New(slog.NewTextHandler(os.Stderr, opts)), nil
	case "json":
		return slog.New(slog.NewJSONHandler(os.Stderr, opts)), nil
	default:
		return nil, fmt.Errorf("bad -log-format %q (want text or json)", *f.logFormat)
	}
}

// exportSpans writes the tracer's retained spans to -trace-out as JSONL.
// No-op unless both tracing and the output path are configured.
func (f *runFlags) exportSpans() {
	if f.tracer == nil || *f.traceOut == "" {
		return
	}
	out, err := os.Create(*f.traceOut)
	if err == nil {
		err = obs.WriteSpansJSONL(out, f.tracer.Spans(obs.SpanFilter{}))
		if cerr := out.Close(); err == nil {
			err = cerr
		}
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "dcgsweep: writing -trace-out:", err)
	}
}

// profiles starts the flagged CPU/heap profiles; the returned stop runs
// on the sub-command's way out (before main's os.Exit).
func (f *runFlags) profiles() (func() error, error) {
	return obs.StartProfiles(*f.cpuprofile, *f.memprofile)
}

// engine assembles the sweep engine from the flags.
func (f *runFlags) engine() (*sweep.Engine, error) {
	log, err := f.logger()
	if err != nil {
		return nil, err
	}
	core.SetReplayParallelism(*f.replayPar)
	exec := simrun.NewExec(0, 0)
	if *f.storeDir != "" {
		st, err := store.Open(*f.storeDir, *f.storeMax, log)
		if err != nil {
			return nil, err
		}
		exec.Store = st
	}
	if spans := *f.traceSpans; spans > 0 || *f.traceOut != "" {
		if spans <= 0 {
			spans = obs.DefaultSpanCapacity
		}
		f.tracer = obs.NewTracer(spans)
		f.tracer.SetLogger(log)
		f.tracer.SetSlowThreshold(time.Duration(*f.traceSlowMS) * time.Millisecond)
	}
	return &sweep.Engine{
		Exec:    exec,
		Workers: *f.workers,
		Retries: *f.retries,
		Log:     log,
		Tracer:  f.tracer,
	}, nil
}

// signalContext cancels on the first SIGINT/SIGTERM so an interrupted
// sweep stops at an item boundary with its manifest intact; a second
// signal kills the process the hard way.
func signalContext() context.Context {
	ctx, cancel := context.WithCancel(context.Background())
	sigc := make(chan os.Signal, 2)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	go func() {
		<-sigc
		fmt.Fprintln(os.Stderr, "dcgsweep: interrupted; checkpointing (resume with `dcgsweep resume`)")
		cancel()
		<-sigc
		os.Exit(130)
	}()
	return ctx
}

// report prints the summary and maps it to the exit code.
func report(sum *sweep.Summary, err error) int {
	if sum != nil {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		_ = enc.Encode(sum)
	}
	switch {
	case errors.Is(err, context.Canceled):
		return 130
	case err != nil:
		fmt.Fprintln(os.Stderr, "dcgsweep:", err)
		return 1
	case sum != nil && !sum.Done:
		return 1
	}
	return 0
}

func cmdRun(args []string) int {
	f := newRunFlags("run")
	f.fs.Parse(args)
	if *f.spec == "" || *f.dir == "" {
		fmt.Fprintln(os.Stderr, "dcgsweep run: -spec and -dir are required")
		return 2
	}
	spec, err := sweep.Load(*f.spec)
	if err != nil {
		fmt.Fprintln(os.Stderr, "dcgsweep:", err)
		return 2
	}
	stopProf, err := f.profiles()
	if err != nil {
		fmt.Fprintln(os.Stderr, "dcgsweep:", err)
		return 2
	}
	defer func() {
		if err := stopProf(); err != nil {
			fmt.Fprintln(os.Stderr, "dcgsweep:", err)
		}
	}()
	eng, err := f.engine()
	if err != nil {
		fmt.Fprintln(os.Stderr, "dcgsweep:", err)
		return 2
	}
	sum, err := eng.Start(signalContext(), spec, *f.dir)
	f.exportSpans()
	if errors.Is(err, sweep.ErrExists) {
		fmt.Fprintf(os.Stderr, "dcgsweep: %s already has a manifest; use `dcgsweep resume -dir %s`\n", *f.dir, *f.dir)
		return 2
	}
	return report(sum, err)
}

func cmdResume(args []string) int {
	f := newRunFlags("resume")
	f.fs.Parse(args)
	if *f.dir == "" {
		fmt.Fprintln(os.Stderr, "dcgsweep resume: -dir is required")
		return 2
	}
	stopProf, err := f.profiles()
	if err != nil {
		fmt.Fprintln(os.Stderr, "dcgsweep:", err)
		return 2
	}
	defer func() {
		if err := stopProf(); err != nil {
			fmt.Fprintln(os.Stderr, "dcgsweep:", err)
		}
	}()
	eng, err := f.engine()
	if err != nil {
		fmt.Fprintln(os.Stderr, "dcgsweep:", err)
		return 2
	}
	sum, err := eng.Resume(signalContext(), *f.dir)
	f.exportSpans()
	return report(sum, err)
}

func cmdStatus(args []string) int {
	fs := flag.NewFlagSet("status", flag.ExitOnError)
	dir := fs.String("dir", "", "job directory")
	fs.Parse(args)
	if *dir == "" {
		fmt.Fprintln(os.Stderr, "dcgsweep status: -dir is required")
		return 2
	}
	st, err := sweep.ReadStatus(*dir)
	if err != nil {
		fmt.Fprintln(os.Stderr, "dcgsweep:", err)
		return 1
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	_ = enc.Encode(st)
	return 0
}

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	switch os.Args[1] {
	case "run":
		os.Exit(cmdRun(os.Args[2:]))
	case "resume":
		os.Exit(cmdResume(os.Args[2:]))
	case "status":
		os.Exit(cmdStatus(os.Args[2:]))
	case "version", "-version", "--version":
		v, rev := obs.BuildInfo()
		fmt.Printf("dcgsweep %s (%s)\n", v, rev)
	case "-h", "-help", "--help", "help":
		usage()
	default:
		fmt.Fprintf(os.Stderr, "dcgsweep: unknown command %q\n", os.Args[1])
		usage()
		os.Exit(2)
	}
}
