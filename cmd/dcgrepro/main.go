// Command dcgrepro regenerates every table and figure of the paper's
// evaluation and prints them in the paper's row/series layout, each with
// the paper's reported numbers attached for comparison.
//
// Usage:
//
//	dcgrepro                 # full reproduction, default instruction budget
//	dcgrepro -n 500000       # more instructions per benchmark
//	dcgrepro -fig 10         # a single figure
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"dcg/internal/experiments"
	"dcg/internal/report"
)

func main() {
	var (
		n     = flag.Uint64("n", 300_000, "measured instructions per benchmark")
		fig   = flag.String("fig", "all", "which experiment: all, table1, 4.4, 10..17, families, util, perf, ablations, seeds")
		seeds = flag.Int("seeds", 3, "seed variants for -fig seeds")
		csvD  = flag.String("csv", "", "also write each comparison as CSV into this directory")
		bars  = flag.Bool("bars", false, "also render each comparison as an ASCII bar chart")
	)
	flag.Parse()

	csvDir = *csvD
	showBars = *bars
	if csvDir != "" {
		if err := os.MkdirAll(csvDir, 0o755); err != nil {
			fmt.Fprintln(os.Stderr, "dcgrepro:", err)
			os.Exit(1)
		}
	}

	r := experiments.NewRunner(experiments.Options{Insts: *n})

	type job struct {
		id  string
		run func() error
	}
	show := func(tbl interface{ String() string }, note string) {
		fmt.Println(tbl.String())
		if note != "" {
			fmt.Println("  " + note)
		}
		fmt.Println()
	}
	jobs := []job{
		{"table1", func() error {
			show(experiments.Table1(), "")
			return nil
		}},
		{"4.4", func() error {
			s, err := r.Sec44ALUSweep()
			if err != nil {
				return err
			}
			show(s.Table(), s.PaperNote)
			return nil
		}},
		{"util", func() error {
			u, err := r.Utilization()
			if err != nil {
				return err
			}
			show(u.Table(), u.PaperNote)
			return nil
		}},
		{"10", comparison(r.Fig10, show)},
		{"11", comparison(r.Fig11, show)},
		{"perf", comparison(r.PerfLoss, show)},
		{"12", comparison(r.Fig12, show)},
		{"13", comparison(r.Fig13, show)},
		{"14", comparison(r.Fig14, show)},
		{"15", comparison(r.Fig15, show)},
		{"16", comparison(r.Fig16, show)},
		{"17", comparison(r.Fig17, show)},
		{"families", comparison(r.GatingFamilies, show)},
		{"seeds", func() error {
			rep, err := r.SeedSensitivity(*seeds)
			if err != nil {
				return err
			}
			show(rep.Table(), rep.Note)
			return nil
		}},
		{"ablations", func() error {
			for _, run := range []func() (*experiments.Ablation, error){
				r.DCGContribution, r.SelectionPolicy, r.StorePolicy,
				r.PLBWindow, r.Leakage, r.IssueWidth, r.BranchOracle, r.Headroom,
				r.PredictionVsGranularity,
			} {
				a, err := run()
				if err != nil {
					return err
				}
				show(a.Table(), a.Note)
			}
			return nil
		}},
	}

	ran := false
	for _, j := range jobs {
		if *fig != "all" && *fig != j.id {
			continue
		}
		ran = true
		if err := j.run(); err != nil {
			fmt.Fprintln(os.Stderr, "dcgrepro:", err)
			os.Exit(1)
		}
	}
	if !ran {
		fmt.Fprintf(os.Stderr, "dcgrepro: unknown experiment %q\n", *fig)
		os.Exit(2)
	}
}

func comparison(f func() (*experiments.Comparison, error),
	show func(interface{ String() string }, string)) func() error {
	return func() error {
		c, err := f()
		if err != nil {
			return err
		}
		show(c.Table(), c.PaperNote)
		if showBars {
			fmt.Println(c.Bars())
		}
		if dir := csvDir; dir != "" {
			name := strings.ToLower(strings.ReplaceAll(c.ID, " ", "_")) + ".csv"
			f, err := os.Create(filepath.Join(dir, name))
			if err != nil {
				return err
			}
			defer f.Close()
			if err := report.ComparisonCSV(f, c); err != nil {
				return err
			}
		}
		return nil
	}
}

// csvDir and showBars are set from flags before the jobs run.
var (
	csvDir   string
	showBars bool
)
