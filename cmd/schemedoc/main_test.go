package main

import (
	"fmt"
	"strings"
	"testing"

	"dcg/internal/core"
)

func TestRenderReplacesBetweenMarkers(t *testing.T) {
	doc := []byte("intro\n" + beginMarker + "\nstale table\n" + endMarker + "\noutro\n")
	got, err := render(doc, "fresh table\n")
	if err != nil {
		t.Fatal(err)
	}
	want := "intro\n" + beginMarker + "\nfresh table\n" + endMarker + "\noutro\n"
	if string(got) != want {
		t.Errorf("render:\n%s\nwant:\n%s", got, want)
	}
	// Idempotent: rendering the rendered doc changes nothing.
	again, err := render(got, "fresh table\n")
	if err != nil {
		t.Fatal(err)
	}
	if string(again) != string(got) {
		t.Error("render is not idempotent")
	}
}

func TestRenderRejectsMissingMarkers(t *testing.T) {
	for _, doc := range []string{
		"no markers at all\n",
		beginMarker + "\nno end\n",
		endMarker + "\nend before begin\n" + beginMarker + "\n",
	} {
		if _, err := render([]byte(doc), "t\n"); err == nil {
			t.Errorf("render accepted malformed doc %q", doc)
		}
	}
}

// TestTableCoversRegistry is the docs-completeness contract behind
// `make lint`: the rendered table names every registered scheme, so a
// scheme registered without a docs refresh fails schemedoc -check.
func TestTableCoversRegistry(t *testing.T) {
	table := core.SchemeTableMarkdown()
	for _, kind := range core.AllSchemes() {
		cell := fmt.Sprintf("| `%s` |", kind)
		if !strings.Contains(table, cell) {
			t.Errorf("scheme table missing row for %q", kind)
		}
	}
}
