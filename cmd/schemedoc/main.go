// schemedoc renders the scheme registry's canonical markdown table into
// the documents that embed it (between scheme-table markers), so the
// docs can never drift from the registry: registering a scheme without
// rerunning this tool fails `make lint`.
//
// Usage:
//
//	go run ./cmd/schemedoc            # rewrite the embedded tables in place
//	go run ./cmd/schemedoc -check     # exit 1 if any embedded table is stale
//	go run ./cmd/schemedoc FILE...    # operate on specific files
//
// Each target file must contain the marker pair
//
//	<!-- scheme-table:begin -->
//	<!-- scheme-table:end -->
//
// and everything between the markers is replaced by
// core.SchemeTableMarkdown().
package main

import (
	"bytes"
	"flag"
	"fmt"
	"os"

	"dcg/internal/core"
)

const (
	beginMarker = "<!-- scheme-table:begin -->"
	endMarker   = "<!-- scheme-table:end -->"
)

var defaultFiles = []string{"README.md", "docs/SERVICE.md"}

func main() {
	check := flag.Bool("check", false, "verify the embedded tables match the registry; write nothing")
	flag.Parse()

	files := flag.Args()
	if len(files) == 0 {
		files = defaultFiles
	}

	table := core.SchemeTableMarkdown()
	stale := 0
	for _, path := range files {
		doc, err := os.ReadFile(path)
		if err != nil {
			fatalf("schemedoc: %v", err)
		}
		want, err := render(doc, table)
		if err != nil {
			fatalf("schemedoc: %s: %v", path, err)
		}
		if bytes.Equal(doc, want) {
			continue
		}
		if *check {
			fmt.Fprintf(os.Stderr, "schemedoc: %s: embedded scheme table is stale (run: go run ./cmd/schemedoc)\n", path)
			stale++
			continue
		}
		if err := os.WriteFile(path, want, 0o644); err != nil {
			fatalf("schemedoc: %v", err)
		}
		fmt.Printf("schemedoc: rewrote %s\n", path)
	}
	if stale > 0 {
		os.Exit(1)
	}
}

// render replaces the region between the markers with the table. The
// markers themselves are preserved, each on its own line.
func render(doc []byte, table string) ([]byte, error) {
	begin := bytes.Index(doc, []byte(beginMarker))
	if begin < 0 {
		return nil, fmt.Errorf("missing %q marker", beginMarker)
	}
	end := bytes.Index(doc, []byte(endMarker))
	if end < begin {
		return nil, fmt.Errorf("missing or misplaced %q marker", endMarker)
	}
	var b bytes.Buffer
	b.Write(doc[:begin+len(beginMarker)])
	b.WriteString("\n")
	b.WriteString(table)
	b.Write(doc[end:])
	return b.Bytes(), nil
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, format+"\n", args...)
	os.Exit(1)
}
