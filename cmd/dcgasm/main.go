// Command dcgasm assembles a program for the simulator's ISA and runs it —
// functionally on the emulator, or cycle-accurately on the out-of-order
// pipeline under a chosen clock-gating scheme.
//
// Usage:
//
//	dcgasm -list prog.s              # assemble and print a listing
//	dcgasm -run prog.s               # execute functionally, dump registers
//	dcgasm -pipe -scheme dcg prog.s  # run on the pipeline, print stats
package main

import (
	"flag"
	"fmt"
	"os"

	"dcg/internal/asm"
	"dcg/internal/core"
	"dcg/internal/emu"
)

func main() {
	var (
		list   = flag.Bool("list", false, "print the assembled listing")
		run    = flag.Bool("run", false, "execute functionally and dump registers")
		pipe   = flag.Bool("pipe", false, "run on the cycle-level pipeline")
		scheme = flag.String("scheme", "dcg", "gating scheme for -pipe")
		limit  = flag.Uint64("limit", 10_000_000, "dynamic instruction limit")
	)
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: dcgasm [-list] [-run] [-pipe] prog.s")
		os.Exit(2)
	}
	src, err := os.ReadFile(flag.Arg(0))
	if err != nil {
		fmt.Fprintln(os.Stderr, "dcgasm:", err)
		os.Exit(1)
	}
	prog, err := asm.Assemble(string(src))
	if err != nil {
		fmt.Fprintln(os.Stderr, "dcgasm:", err)
		os.Exit(1)
	}
	if *list {
		fmt.Print(asm.Disassemble(prog))
	}
	if *run {
		m := emu.New(flag.Arg(0), prog)
		m.MaxInsts = *limit
		n, err := m.Run()
		if err != nil {
			fmt.Fprintln(os.Stderr, "dcgasm:", err)
			os.Exit(1)
		}
		fmt.Printf("executed %d instructions\n", n)
		for i, v := range m.IntRegs {
			if v != 0 {
				fmt.Printf("  r%-2d = %d\n", i, v)
			}
		}
		for i, v := range m.FPRegs {
			if v != 0 {
				fmt.Printf("  f%-2d = %g\n", i, v)
			}
		}
	}
	if *pipe {
		kind, ok := parseScheme(*scheme)
		if !ok {
			fmt.Fprintf(os.Stderr, "dcgasm: unknown scheme %q\n", *scheme)
			os.Exit(2)
		}
		m := emu.New(flag.Arg(0), prog)
		m.MaxInsts = *limit
		sim := core.NewSimulator(core.DefaultMachine())
		res, err := sim.RunSource(m, kind)
		if err != nil {
			fmt.Fprintln(os.Stderr, "dcgasm:", err)
			os.Exit(1)
		}
		fmt.Print(res.Summary())
	}
	if !*list && !*run && !*pipe {
		fmt.Printf("assembled %d instructions at %#x (use -list, -run or -pipe)\n",
			len(prog.Insts), prog.Base)
	}
}

func parseScheme(s string) (core.SchemeKind, bool) {
	k, err := core.ParseScheme(s)
	return k, err == nil
}
