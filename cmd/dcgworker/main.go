// Command dcgworker is one node of a distributed sweep fleet: it joins
// a dcgserve coordinator (-cluster), pulls work leases over HTTP, runs
// the simulations through the same two-level executor a single-node
// sweep uses, and reports results back. Its artifact store is a local
// disk cache remote-tiered to the coordinator's /store/v1/, so timing
// captures written by one worker are readable by every other.
//
// Usage:
//
//	dcgworker -join http://coordinator:8080 [-name HOST] [-parallel N]
//	          [-store-dir DIR] [-store-max-bytes N] [-cache 1024]
//	          [-timing-cache 16] [-poll 250ms] [-log-level info]
//	          [-log-format text] [-version]
//
// Killing a worker (any signal, any time) is safe: its unreported
// leases expire at the coordinator and requeue on the surviving fleet,
// consuming no retry attempts. See docs/SWEEPS.md.
package main

import (
	"context"
	"flag"
	"fmt"
	"log/slog"
	"os"
	"os/signal"
	"runtime"
	"strings"
	"sync"
	"syscall"
	"time"

	"dcg/internal/cluster"
	"dcg/internal/core"
	"dcg/internal/obs"
	"dcg/internal/simrun"
	"dcg/internal/store"
)

// newLogger builds the process logger from -log-level/-log-format.
func newLogger(level, format string) (*slog.Logger, error) {
	var lv slog.Level
	if err := lv.UnmarshalText([]byte(level)); err != nil {
		return nil, fmt.Errorf("bad -log-level %q (want debug, info, warn or error)", level)
	}
	opts := &slog.HandlerOptions{Level: lv}
	switch strings.ToLower(format) {
	case "text":
		return slog.New(slog.NewTextHandler(os.Stderr, opts)), nil
	case "json":
		return slog.New(slog.NewJSONHandler(os.Stderr, opts)), nil
	default:
		return nil, fmt.Errorf("bad -log-format %q (want text or json)", format)
	}
}

func main() {
	var (
		join        = flag.String("join", "", "coordinator base URL, e.g. http://host:8080 (required)")
		name        = flag.String("name", "", "worker name for leases and affinity (default: hostname)")
		parallel    = flag.Int("parallel", 0, "concurrent lease loops (0 = GOMAXPROCS)")
		storeDir    = flag.String("store-dir", "", "local artifact cache directory (empty = a temp dir)")
		storeMax    = flag.Int64("store-max-bytes", 0, "evict least-recently-used local artifacts above this size (0 = unbounded)")
		cacheSize   = flag.Int("cache", 1024, "max memoised results (negative = unbounded)")
		timingCache = flag.Int("timing-cache", 16, "max cached timing traces, megabytes each (negative = unbounded)")
		poll        = flag.Duration("poll", 250*time.Millisecond, "idle re-poll interval when the coordinator has no work")
		logLevel    = flag.String("log-level", "info", "log verbosity: debug, info, warn, error")
		logFormat   = flag.String("log-format", "text", "log encoding: text or json")
		replayPar   = flag.Int("replay-par", runtime.GOMAXPROCS(0), "replay/decode worker goroutines per evaluation (1 = serial kernel)")
		version     = flag.Bool("version", false, "print build version and exit")
	)
	flag.Parse()
	core.SetReplayParallelism(*replayPar)

	if *version {
		v, rev := obs.BuildInfo()
		fmt.Printf("dcgworker %s (%s)\n", v, rev)
		return
	}
	logger, err := newLogger(*logLevel, *logFormat)
	if err != nil {
		fmt.Fprintln(os.Stderr, "dcgworker:", err)
		os.Exit(2)
	}
	if *join == "" {
		fmt.Fprintln(os.Stderr, "dcgworker: -join is required (the coordinator's base URL)")
		os.Exit(2)
	}
	base := strings.TrimRight(*join, "/")

	if *name == "" {
		*name, _ = os.Hostname()
		if *name == "" {
			*name = fmt.Sprintf("worker-%d", os.Getpid())
		}
	}
	if *parallel <= 0 {
		*parallel = runtime.GOMAXPROCS(0)
	}
	if *storeDir == "" {
		dir, err := os.MkdirTemp("", "dcgworker-store-")
		if err != nil {
			fmt.Fprintln(os.Stderr, "dcgworker:", err)
			os.Exit(2)
		}
		defer os.RemoveAll(dir)
		*storeDir = dir
	}

	// Cache sizes use the dcgserve convention: negative = unbounded.
	if *cacheSize < 0 {
		*cacheSize = 0
	}
	if *timingCache < 0 {
		*timingCache = 0
	}

	local, err := store.Open(*storeDir, *storeMax, logger)
	if err != nil {
		fmt.Fprintln(os.Stderr, "dcgworker:", err)
		os.Exit(2)
	}
	remote := store.NewRemote(base+"/store/v1", local, logger)
	exec := simrun.NewExec(*cacheSize, *timingCache)
	exec.Store = remote

	// A small tracer so lease traceparents from the coordinator have
	// spans to parent; the ring is process-local (workers serve no HTTP).
	tracer := obs.NewTracer(1024)
	tracer.SetLogger(logger)

	ctx, cancel := context.WithCancel(context.Background())
	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	go func() {
		sig := <-sigc
		// Abandon in-flight work: unreported leases expire and requeue at
		// the coordinator without consuming attempts, so a hard stop is
		// always safe.
		logger.Info("stopping; in-flight leases will requeue at the coordinator", "signal", sig.String())
		cancel()
	}()

	v, rev := obs.BuildInfo()
	logger.Info("dcgworker joining", "coordinator", base, "name", *name,
		"parallel", *parallel, "store", *storeDir, "version", v, "revision", rev)

	var wg sync.WaitGroup
	workers := make([]*cluster.Worker, *parallel)
	for i := range workers {
		w := &cluster.Worker{
			Name:   *name,
			Client: cluster.NewHTTPClient(base + "/cluster/v1"),
			Exec:   exec,
			Poll:   *poll,
			Log:    logger,
			Tracer: tracer,
		}
		workers[i] = w
		wg.Add(1)
		go func() { defer wg.Done(); w.Run(ctx) }()
	}
	wg.Wait()

	var executed uint64
	for _, w := range workers {
		executed += w.Executed()
	}
	st := remote.Stats()
	logger.Info("dcgworker stopped", "executed", executed,
		"store_hits", st.Hits, "store_misses", st.Misses,
		"store_writes", st.Writes, "store_errors", st.Errors)
}
