// Command benchjson converts `go test -bench` text output into JSON, so
// benchmark numbers can be committed, diffed, and consumed by tooling.
//
// Usage:
//
//	go test -bench=. -benchmem -run='^$' ./... | benchjson > BENCH.json
//	make bench-json
//	benchjson -compare [-threshold 0.10] [-metric ns/op] [-only REGEXP] old.json new.json
//
// Each benchmark line ("BenchmarkName  N  v1 unit1  v2 unit2 ...")
// becomes one entry with its iteration count and a unit → value metric
// map; the goos/goarch/cpu/pkg header lines are carried through once.
//
// With -compare, two previously converted reports are diffed instead:
// benchmarks are matched by package + name, and the process exits
// non-zero when any matched benchmark's metric grew by more than the
// threshold (CI regression gating). -only narrows the gate to benchmarks
// whose pkg/Name key matches a regexp, so a tightly-thresholded pass can
// watch a specific family (e.g. -only 'dcg/Replay' -threshold 0.15)
// alongside the loose whole-suite gate.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"regexp"
	"strconv"
	"strings"
)

// Benchmark is one parsed result line.
type Benchmark struct {
	// Name is the benchmark name without the "Benchmark" prefix, with
	// any -N GOMAXPROCS suffix retained (it distinguishes parallel runs).
	Name string `json:"name"`

	// Pkg is the package the benchmark came from (the most recent "pkg:"
	// header line).
	Pkg string `json:"pkg,omitempty"`

	// Iterations is b.N for the reported measurement.
	Iterations int64 `json:"iterations"`

	// Metrics maps unit → value for every "value unit" pair on the line
	// (ns/op, B/op, allocs/op, and any b.ReportMetric custom units).
	Metrics map[string]float64 `json:"metrics"`
}

// Report is the full converted output.
type Report struct {
	GOOS       string      `json:"goos,omitempty"`
	GOARCH     string      `json:"goarch,omitempty"`
	CPU        string      `json:"cpu,omitempty"`
	Benchmarks []Benchmark `json:"benchmarks"`
}

func main() {
	var (
		compare   = flag.Bool("compare", false, "diff two converted reports: benchjson -compare old.json new.json")
		threshold = flag.Float64("threshold", 0.10, "relative regression threshold for -compare (0.10 = 10%)")
		metric    = flag.String("metric", "ns/op", "metric to compare with -compare")
		only      = flag.String("only", "", "with -compare, restrict to benchmarks whose pkg/Name key matches this regexp")
	)
	flag.Parse()

	if *compare {
		if flag.NArg() != 2 {
			fmt.Fprintln(os.Stderr, "benchjson: -compare needs exactly two report files (old new)")
			os.Exit(2)
		}
		var onlyRe *regexp.Regexp
		if *only != "" {
			re, err := regexp.Compile(*only)
			if err != nil {
				fmt.Fprintln(os.Stderr, "benchjson: -only:", err)
				os.Exit(2)
			}
			onlyRe = re
		}
		os.Exit(runCompare(os.Stdout, flag.Arg(0), flag.Arg(1), *metric, *threshold, onlyRe))
	}

	rep, err := parse(bufio.NewScanner(os.Stdin))
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	if len(rep.Benchmarks) == 0 {
		fmt.Fprintln(os.Stderr, "benchjson: no benchmark lines on stdin")
		os.Exit(1)
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rep); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}

// parse consumes `go test -bench` output line by line.
func parse(sc *bufio.Scanner) (*Report, error) {
	rep := &Report{}
	pkg := ""
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "goos: "):
			rep.GOOS = strings.TrimPrefix(line, "goos: ")
		case strings.HasPrefix(line, "goarch: "):
			rep.GOARCH = strings.TrimPrefix(line, "goarch: ")
		case strings.HasPrefix(line, "cpu: "):
			rep.CPU = strings.TrimPrefix(line, "cpu: ")
		case strings.HasPrefix(line, "pkg: "):
			pkg = strings.TrimPrefix(line, "pkg: ")
		case strings.HasPrefix(line, "Benchmark"):
			b, err := parseBenchLine(line, pkg)
			if err != nil {
				return nil, err
			}
			if b != nil {
				rep.Benchmarks = append(rep.Benchmarks, *b)
			}
		}
	}
	return rep, sc.Err()
}

// parseBenchLine parses one "BenchmarkX  N  v1 u1  v2 u2 ..." line.
// Lines without an iteration count (e.g. a bare "BenchmarkX" printed
// before a failure) are skipped rather than treated as errors.
func parseBenchLine(line, pkg string) (*Benchmark, error) {
	f := strings.Fields(line)
	if len(f) < 2 {
		return nil, nil
	}
	n, err := strconv.ParseInt(f[1], 10, 64)
	if err != nil {
		return nil, nil // "BenchmarkX ... FAIL" and similar
	}
	b := &Benchmark{
		Name:       strings.TrimPrefix(f[0], "Benchmark"),
		Pkg:        pkg,
		Iterations: n,
		Metrics:    make(map[string]float64),
	}
	// The remainder is value/unit pairs.
	rest := f[2:]
	if len(rest)%2 != 0 {
		return nil, fmt.Errorf("odd value/unit list in %q", line)
	}
	for i := 0; i < len(rest); i += 2 {
		v, err := strconv.ParseFloat(rest[i], 64)
		if err != nil {
			return nil, fmt.Errorf("bad value %q in %q", rest[i], line)
		}
		b.Metrics[rest[i+1]] = v
	}
	return b, nil
}
