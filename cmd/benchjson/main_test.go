package main

import (
	"bufio"
	"strings"
	"testing"
)

const sample = `goos: linux
goarch: amd64
pkg: dcg
cpu: Intel(R) Xeon(R) Processor @ 2.10GHz
BenchmarkDCGRun         	       3	  41204705 ns/op	        20.81 save%
BenchmarkReplayEvaluate 	       3	  11037250 ns/op	        20.81 save%
PASS
ok  	dcg	0.533s
pkg: dcg/internal/simrun
BenchmarkCacheDo-4      	 1000000	      1042 ns/op	     120 B/op	       3 allocs/op
`

func TestParse(t *testing.T) {
	rep, err := parse(bufio.NewScanner(strings.NewReader(sample)))
	if err != nil {
		t.Fatal(err)
	}
	if rep.GOOS != "linux" || rep.GOARCH != "amd64" || !strings.Contains(rep.CPU, "Xeon") {
		t.Errorf("header mis-parsed: %+v", rep)
	}
	if len(rep.Benchmarks) != 3 {
		t.Fatalf("parsed %d benchmarks, want 3", len(rep.Benchmarks))
	}
	run := rep.Benchmarks[0]
	if run.Name != "DCGRun" || run.Pkg != "dcg" || run.Iterations != 3 {
		t.Errorf("first benchmark mis-parsed: %+v", run)
	}
	if run.Metrics["ns/op"] != 41204705 || run.Metrics["save%"] != 20.81 {
		t.Errorf("metrics mis-parsed: %v", run.Metrics)
	}
	cache := rep.Benchmarks[2]
	if cache.Name != "CacheDo-4" || cache.Pkg != "dcg/internal/simrun" {
		t.Errorf("per-package attribution wrong: %+v", cache)
	}
	if cache.Metrics["allocs/op"] != 3 {
		t.Errorf("benchmem metrics mis-parsed: %v", cache.Metrics)
	}
}

func TestParseSkipsUncountedLines(t *testing.T) {
	rep, err := parse(bufio.NewScanner(strings.NewReader("BenchmarkBroken\nBenchmarkOK 5 10 ns/op\n")))
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Benchmarks) != 1 || rep.Benchmarks[0].Name != "OK" {
		t.Fatalf("parsed %+v", rep.Benchmarks)
	}
}
