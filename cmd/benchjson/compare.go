package main

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"regexp"
	"sort"
)

// Delta is one benchmark's old-vs-new comparison.
type Delta struct {
	// Key is "pkg/Name" (or just the name when the package is unknown).
	Key string

	// Old and New are the compared metric values.
	Old, New float64

	// Ratio is (New-Old)/Old: positive = slower for time-like metrics.
	Ratio float64

	// Regression marks deltas beyond the threshold.
	Regression bool
}

// CompareResult is the outcome of comparing two reports.
type CompareResult struct {
	Deltas []Delta

	// MissingInNew lists benchmarks present in the old report only
	// (renamed or deleted — compared against nothing).
	MissingInNew []string

	// OnlyInNew lists benchmarks with no old counterpart.
	OnlyInNew []string

	// NoMetric lists benchmarks lacking the compared metric on either side.
	NoMetric []string
}

// Regressions counts deltas beyond the threshold.
func (r *CompareResult) Regressions() int {
	n := 0
	for _, d := range r.Deltas {
		if d.Regression {
			n++
		}
	}
	return n
}

func benchKey(b Benchmark) string {
	if b.Pkg == "" {
		return b.Name
	}
	return b.Pkg + "/" + b.Name
}

// compareReports diffs two reports on one metric. A benchmark regresses
// when its metric grew by more than threshold (relative): with the
// default ns/op, larger is slower. A non-nil only restricts the
// comparison to benchmarks whose pkg/Name key matches it — both sides
// are filtered, so out-of-scope renames and removals stay silent too.
func compareReports(old, new *Report, metric string, threshold float64, only *regexp.Regexp) *CompareResult {
	res := &CompareResult{}
	oldBy := make(map[string]Benchmark, len(old.Benchmarks))
	for _, b := range old.Benchmarks {
		if key := benchKey(b); only == nil || only.MatchString(key) {
			oldBy[key] = b
		}
	}
	seen := make(map[string]bool, len(new.Benchmarks))
	for _, nb := range new.Benchmarks {
		key := benchKey(nb)
		if only != nil && !only.MatchString(key) {
			continue
		}
		seen[key] = true
		ob, ok := oldBy[key]
		if !ok {
			res.OnlyInNew = append(res.OnlyInNew, key)
			continue
		}
		ov, okOld := ob.Metrics[metric]
		nv, okNew := nb.Metrics[metric]
		if !okOld || !okNew || ov == 0 {
			res.NoMetric = append(res.NoMetric, key)
			continue
		}
		ratio := (nv - ov) / ov
		res.Deltas = append(res.Deltas, Delta{
			Key: key, Old: ov, New: nv, Ratio: ratio,
			Regression: ratio > threshold,
		})
	}
	for key := range oldBy {
		if !seen[key] {
			res.MissingInNew = append(res.MissingInNew, key)
		}
	}
	sort.Slice(res.Deltas, func(i, j int) bool { return res.Deltas[i].Ratio > res.Deltas[j].Ratio })
	sort.Strings(res.MissingInNew)
	sort.Strings(res.OnlyInNew)
	sort.Strings(res.NoMetric)
	return res
}

func loadReport(path string) (*Report, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	var rep Report
	if err := json.NewDecoder(f).Decode(&rep); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return &rep, nil
}

// runCompare implements `benchjson -compare old.json new.json`: it prints
// a delta table and returns the process exit code (1 when any benchmark
// regressed beyond the threshold, 0 otherwise). A non-nil only restricts
// the gate to matching benchmarks, and matching nothing is an error —
// a gate whose regexp rotted would otherwise pass forever.
func runCompare(w io.Writer, oldPath, newPath, metric string, threshold float64, only *regexp.Regexp) int {
	old, err := loadReport(oldPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		return 2
	}
	new, err := loadReport(newPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		return 2
	}
	res := compareReports(old, new, metric, threshold, only)
	if only != nil && len(res.Deltas) == 0 && len(res.NoMetric) == 0 &&
		len(res.MissingInNew) == 0 && len(res.OnlyInNew) == 0 {
		fmt.Fprintf(os.Stderr, "benchjson: -only %q matched no benchmarks\n", only)
		return 2
	}

	fmt.Fprintf(w, "comparing %s (threshold %+.0f%%)\n", metric, 100*threshold)
	for _, d := range res.Deltas {
		mark := " "
		if d.Regression {
			mark = "!"
		}
		fmt.Fprintf(w, "%s %-60s %14.1f -> %14.1f  %+7.1f%%\n",
			mark, d.Key, d.Old, d.New, 100*d.Ratio)
	}
	for _, k := range res.NoMetric {
		fmt.Fprintf(w, "? %-60s metric %s missing on one side\n", k, metric)
	}
	for _, k := range res.MissingInNew {
		fmt.Fprintf(w, "- %s (in old report only)\n", k)
	}
	for _, k := range res.OnlyInNew {
		fmt.Fprintf(w, "+ %s (new benchmark)\n", k)
	}
	if n := res.Regressions(); n > 0 {
		fmt.Fprintf(w, "FAIL: %d benchmark(s) regressed more than %.0f%%\n", n, 100*threshold)
		return 1
	}
	fmt.Fprintf(w, "ok: %d benchmark(s) within threshold\n", len(res.Deltas))
	return 0
}
