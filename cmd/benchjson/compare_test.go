package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

func mkBench(pkg, name string, nsop float64) Benchmark {
	return Benchmark{
		Name: name, Pkg: pkg, Iterations: 100,
		Metrics: map[string]float64{"ns/op": nsop},
	}
}

func TestCompareReports(t *testing.T) {
	old := &Report{Benchmarks: []Benchmark{
		mkBench("dcg/internal/core", "RunDCG-8", 1000),
		mkBench("dcg/internal/core", "RunNone-8", 1000),
		mkBench("dcg/internal/core", "Removed-8", 500),
		mkBench("dcg/internal/simrun", "Replay-8", 200),
	}}
	new := &Report{Benchmarks: []Benchmark{
		mkBench("dcg/internal/core", "RunDCG-8", 1200),  // +20%: regression at 10%
		mkBench("dcg/internal/core", "RunNone-8", 1050), // +5%: within threshold
		mkBench("dcg/internal/core", "Added-8", 700),
		{Name: "Replay-8", Pkg: "dcg/internal/simrun", Iterations: 1,
			Metrics: map[string]float64{"B/op": 42}}, // ns/op missing
	}}

	res := compareReports(old, new, "ns/op", 0.10, nil)
	if got := res.Regressions(); got != 1 {
		t.Fatalf("regressions = %d, want 1: %+v", got, res.Deltas)
	}
	if len(res.Deltas) != 2 {
		t.Fatalf("deltas = %d, want 2", len(res.Deltas))
	}
	// Deltas are sorted worst-first.
	if d := res.Deltas[0]; d.Key != "dcg/internal/core/RunDCG-8" || !d.Regression {
		t.Errorf("worst delta = %+v, want the RunDCG regression", d)
	}
	if d := res.Deltas[1]; d.Regression {
		t.Errorf("+5%% flagged as regression: %+v", d)
	}
	if len(res.MissingInNew) != 1 || res.MissingInNew[0] != "dcg/internal/core/Removed-8" {
		t.Errorf("missing = %v", res.MissingInNew)
	}
	if len(res.OnlyInNew) != 1 || res.OnlyInNew[0] != "dcg/internal/core/Added-8" {
		t.Errorf("new-only = %v", res.OnlyInNew)
	}
	if len(res.NoMetric) != 1 || res.NoMetric[0] != "dcg/internal/simrun/Replay-8" {
		t.Errorf("no-metric = %v", res.NoMetric)
	}
}

func TestCompareMatchesAcrossPackages(t *testing.T) {
	// Same benchmark name in two packages must not cross-match.
	old := &Report{Benchmarks: []Benchmark{
		mkBench("pkg/a", "Run-8", 100),
		mkBench("pkg/b", "Run-8", 1000),
	}}
	new := &Report{Benchmarks: []Benchmark{
		mkBench("pkg/a", "Run-8", 100),
		mkBench("pkg/b", "Run-8", 1000),
	}}
	res := compareReports(old, new, "ns/op", 0.10, nil)
	if len(res.Deltas) != 2 || res.Regressions() != 0 {
		t.Fatalf("identical reports: %+v", res)
	}
	for _, d := range res.Deltas {
		if d.Ratio != 0 {
			t.Errorf("delta %s ratio = %v, want 0", d.Key, d.Ratio)
		}
	}
}

func TestCompareImprovementIsNotRegression(t *testing.T) {
	old := &Report{Benchmarks: []Benchmark{mkBench("p", "Fast-8", 1000)}}
	new := &Report{Benchmarks: []Benchmark{mkBench("p", "Fast-8", 400)}}
	res := compareReports(old, new, "ns/op", 0.10, nil)
	if res.Regressions() != 0 {
		t.Errorf("a 60%% speedup counted as regression: %+v", res.Deltas)
	}
}

func TestCompareOnlyFilter(t *testing.T) {
	old := &Report{Benchmarks: []Benchmark{
		mkBench("dcg", "ReplaySingle-8", 100),
		mkBench("dcg", "ReplayFusedN-8", 100),
		mkBench("dcg", "Table1Baseline-8", 100),
		mkBench("dcg", "ReplayRemoved-8", 100),
		mkBench("dcg", "OtherRemoved-8", 100),
	}}
	new := &Report{Benchmarks: []Benchmark{
		mkBench("dcg", "ReplaySingle-8", 130),   // +30%: regression at 15%
		mkBench("dcg", "ReplayFusedN-8", 105),   // within threshold
		mkBench("dcg", "Table1Baseline-8", 900), // out of scope: must be invisible
		mkBench("dcg", "OtherAdded-8", 50),
	}}
	only := regexp.MustCompile(`dcg/Replay`)

	res := compareReports(old, new, "ns/op", 0.15, only)
	if len(res.Deltas) != 2 {
		t.Fatalf("deltas = %d, want 2 (Replay* only): %+v", len(res.Deltas), res.Deltas)
	}
	if got := res.Regressions(); got != 1 {
		t.Errorf("regressions = %d, want 1 (the 9x Table1Baseline jump is out of scope)", got)
	}
	// Filtering applies to both sides: the non-Replay removal and addition
	// must not leak into the report.
	if len(res.MissingInNew) != 1 || res.MissingInNew[0] != "dcg/ReplayRemoved-8" {
		t.Errorf("missing = %v, want only dcg/ReplayRemoved-8", res.MissingInNew)
	}
	if len(res.OnlyInNew) != 0 {
		t.Errorf("new-only = %v, want none", res.OnlyInNew)
	}
}

func TestRunCompareOnlyMatchingNothingFails(t *testing.T) {
	dir := t.TempDir()
	rep := &Report{Benchmarks: []Benchmark{mkBench("p", "X-8", 100)}}
	oldPath := writeReport(t, dir, "old.json", rep)
	newPath := writeReport(t, dir, "new.json", rep)
	var out strings.Builder
	if code := runCompare(&out, oldPath, newPath, "ns/op", 0.10, regexp.MustCompile(`NoSuchBench`)); code != 2 {
		t.Errorf("empty -only match exited %d, want 2 (a rotted gate must not pass silently)", code)
	}
}

func writeReport(t *testing.T, dir, name string, rep *Report) string {
	t.Helper()
	path := filepath.Join(dir, name)
	data, err := json.Marshal(rep)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestRunCompareExitCodes(t *testing.T) {
	dir := t.TempDir()
	oldPath := writeReport(t, dir, "old.json", &Report{Benchmarks: []Benchmark{
		mkBench("p", "X-8", 100),
	}})
	okPath := writeReport(t, dir, "ok.json", &Report{Benchmarks: []Benchmark{
		mkBench("p", "X-8", 105),
	}})
	badPath := writeReport(t, dir, "bad.json", &Report{Benchmarks: []Benchmark{
		mkBench("p", "X-8", 200),
	}})

	var out strings.Builder
	if code := runCompare(&out, oldPath, okPath, "ns/op", 0.10, nil); code != 0 {
		t.Errorf("within-threshold compare exited %d:\n%s", code, out.String())
	}
	if !strings.Contains(out.String(), "ok:") {
		t.Errorf("missing ok summary:\n%s", out.String())
	}

	out.Reset()
	if code := runCompare(&out, oldPath, badPath, "ns/op", 0.10, nil); code != 1 {
		t.Errorf("2x regression exited %d, want 1:\n%s", code, out.String())
	}
	if !strings.Contains(out.String(), "FAIL:") {
		t.Errorf("missing FAIL summary:\n%s", out.String())
	}

	// A generous threshold tolerates the same delta.
	out.Reset()
	if code := runCompare(&out, oldPath, badPath, "ns/op", 2.0, nil); code != 0 {
		t.Errorf("2x regression under 200%% threshold exited %d, want 0", code)
	}

	// Unreadable input is an operational error, not a regression.
	if code := runCompare(&out, filepath.Join(dir, "nope.json"), okPath, "ns/op", 0.10, nil); code != 2 {
		t.Errorf("missing file exited %d, want 2", code)
	}
}
